"""Differential tests: PartitionedDirectory versus the oracle directory.

The two-implementation seam (DESIGN.md S19) rests on one claim: with a
**zero staleness window** (and lookup hop-charging off), the
hash-partitioned directory is *observationally identical* to the
paper's perfect GlobalDirectory — every protocol answer (``lookup`` /
``route_lookup`` / ``census`` / ``masters_at`` / ``len`` / purge lists)
agrees, through arbitrary interleavings of registrations, drops,
purges, crashes and rejoins.  Partitioning then only ever *adds* costs
(hops, staleness), never changes what the protocol computes.

Mirrors ``test_scheduler_differential.py``: hypothesis drives both
implementations with the same adversarial op sequences at the unit
level; full-system equivalence (byte-identical traces on the golden
workload) is pinned at the bottom, and oracle-mode golden neutrality
lives in ``test_golden_trace.py``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.block import BlockId
from repro.cache.directory import GlobalDirectory
from repro.cache.hashring import PartitionedDirectory

NUM_NODES = 4
#: Small pools so collisions (re-registrations, repeated purges of the
#: same node, crash-then-restart cycles) are the common case.
BLOCKS = [BlockId(f, i) for f in range(6) for i in range(3)]

_BLOCK = st.integers(min_value=0, max_value=len(BLOCKS) - 1)
_NODE = st.integers(min_value=0, max_value=NUM_NODES - 1)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("set"), _BLOCK, _NODE),
        st.tuples(st.just("clear"), _BLOCK),
        st.tuples(st.just("lookup"), _BLOCK),
        st.tuples(st.just("route"), _BLOCK),
        st.tuples(st.just("purge"), _NODE),
        st.tuples(st.just("masters_at"), _NODE),
        st.just(("census",)),
        st.tuples(st.just("crash"), _NODE),
        st.tuples(st.just("restart"), _NODE),
    ),
    min_size=1,
    max_size=150,
)


def _pair():
    oracle = GlobalDirectory()
    part = PartitionedDirectory(NUM_NODES, vnodes=16, seed=0,
                                staleness_ms=0.0)
    return oracle, part


# ---------------------------------------------------------------------------
# 1. Op-level differential
# ---------------------------------------------------------------------------
@given(ops=_OPS)
@settings(max_examples=300, deadline=None)
def test_zero_staleness_partitioned_matches_oracle(ops):
    """Any interleaving of directory ops — including crash/rejoin cycles
    with the middleware's re-registration protocol — leaves the two
    implementations answering identically."""
    oracle, part = _pair()
    for op in ops:
        if op[0] == "set":
            blk, node = BLOCKS[op[1]], op[2]
            oracle.set_master(blk, node)
            part.set_master(blk, node)
        elif op[0] == "clear":
            blk = BLOCKS[op[1]]
            oracle.clear_master(blk)
            part.clear_master(blk)
        elif op[0] == "lookup":
            blk = BLOCKS[op[1]]
            assert oracle.lookup(blk) == part.lookup(blk)
        elif op[0] == "route":
            # Zero window: the routed answer IS the authoritative one.
            blk = BLOCKS[op[1]]
            assert part.route_lookup(blk) == oracle.lookup(blk)
        elif op[0] == "purge":
            # Sorted compare: crash re-registration may legally reorder
            # dict insertion; exact-order equality (crash-free) is
            # pinned separately below.
            assert sorted(oracle.purge_node(op[1])) == \
                sorted(part.purge_node(op[1]))
        elif op[0] == "masters_at":
            assert oracle.masters_at(op[1]) == part.masters_at(op[1])
        elif op[0] == "census":
            assert oracle.census() == part.census()
        elif op[0] == "crash":
            node = op[1]
            # The middleware's crash hook, end to end: ring repair first
            # (forget the dead home's partition), then the usual orphan
            # purge, then re-registration of lost entries by their
            # still-alive holders.  The oracle's crash is just the purge.
            lost = part.partition_crash(node)
            got = sorted(part.purge_node(node))
            assert got == sorted(oracle.purge_node(node))
            for blk, holder in lost:
                assert holder != node
                part.set_master(blk, holder)
        elif op[0] == "restart":
            part.partition_rejoin(op[1])
        assert len(oracle) == len(part)
    assert oracle.census() == part.census()
    for blk in BLOCKS:
        assert oracle.lookup(blk) == part.lookup(blk)
        assert part.route_lookup(blk) == oracle.lookup(blk)
    assert part.stale_served == 0  # zero window: truth only, always


@given(ops=_OPS)
@settings(max_examples=100, deadline=None)
def test_crash_free_purge_order_identical(ops):
    """Without crashes, the purge *order* (which drives repair event
    order in the simulator) is also entry-for-entry identical."""
    oracle, part = _pair()
    for op in ops:
        if op[0] == "set":
            blk, node = BLOCKS[op[1]], op[2]
            oracle.set_master(blk, node)
            part.set_master(blk, node)
        elif op[0] == "clear":
            blk = BLOCKS[op[1]]
            oracle.clear_master(blk)
            part.clear_master(blk)
        elif op[0] == "purge":
            assert oracle.purge_node(op[1]) == part.purge_node(op[1])
    assert oracle.purge_node(0) == part.purge_node(0)


def test_crash_reregistration_restores_survivor_entries():
    """Deterministic end-to-end repair: after crash + purge + re-register
    the partitioned map equals the oracle's post-purge map exactly."""
    oracle, part = _pair()
    for f in range(6):
        for i in range(3):
            blk = BlockId(f, i)
            oracle.set_master(blk, (f + i) % NUM_NODES)
            part.set_master(blk, (f + i) % NUM_NODES)
    victim = 3  # owns the largest arc of this seeded ring
    lost = part.partition_crash(victim)
    assert lost, "the seeded layout must lose some homed entries"
    assert sorted(part.purge_node(victim)) == \
        sorted(oracle.purge_node(victim))
    for blk, holder in lost:
        part.set_master(blk, holder)
    assert part.census() == oracle.census()
    for f in range(6):
        for i in range(3):
            blk = BlockId(f, i)
            assert part.lookup(blk) == oracle.lookup(blk)


# ---------------------------------------------------------------------------
# 2. Full-system differential
# ---------------------------------------------------------------------------
def _golden_workload():
    from repro.traces import datasets

    return datasets.scaled("rutgers", 0.01, num_requests=400)


def _run(config, workload):
    from repro.experiments.runner import ExperimentConfig, run_experiment
    from repro.obs import Observability

    cfg = ExperimentConfig(
        system=config, trace=workload, num_nodes=4,
        mem_mb_per_node=0.5, num_clients=8, seed=0,
    )
    obs = Observability(trace=True)
    run_experiment(cfg, obs=obs)
    return obs


def test_costless_partitioned_system_run_matches_oracle(monkeypatch):
    """The golden workload, end to end: partitioned directory with zero
    staleness and hop-charging off produces the byte-identical kernel
    event stream (trace JSONL) — and metrics identical up to the two
    partitioned-only counters the snapshot adds."""
    from repro.core.config import variant

    monkeypatch.delenv("REPRO_DIRECTORY", raising=False)
    workload = _golden_workload()
    oracle_obs = _run(variant("cc-kmc"), workload)
    part_obs = _run(
        variant("cc-kmc").with_overrides(
            directory="partitioned", dir_staleness_ms=0.0,
            dir_hop_cost=False,
        ),
        workload,
    )
    assert part_obs.tracer.to_jsonl() == oracle_obs.tracer.to_jsonl()

    oracle_metrics = oracle_obs.registry.snapshot()
    part_metrics = part_obs.registry.snapshot()
    extras = {"directory_route_lookups", "directory_stale_served"}
    for name, snap in part_metrics.items():
        base = oracle_metrics[name]
        trimmed = {k: v for k, v in snap.items() if k not in extras}
        base_trimmed = {k: v for k, v in base.items() if k not in extras}
        assert trimmed == base_trimmed, name


def test_default_partitioned_run_differs_and_counts_hops(monkeypatch):
    """With the real knobs on (hop charging, nonzero window) the
    partitioned run must *not* be a silent no-op: remote lookups are
    charged and counted."""
    monkeypatch.delenv("REPRO_DIRECTORY", raising=False)
    from repro.core.config import variant

    from repro.experiments.runner import ExperimentConfig, run_experiment
    from repro.obs import Observability

    workload = _golden_workload()
    cfg = ExperimentConfig(
        system=variant("cc-kmc").with_overrides(directory="partitioned"),
        trace=workload, num_nodes=4, mem_mb_per_node=0.5,
        num_clients=8, seed=0,
    )
    part_obs = Observability(trace=True)
    result = run_experiment(cfg, obs=part_obs)
    oracle_obs = _run(variant("cc-kmc"), workload)
    assert part_obs.tracer.digest() != oracle_obs.tracer.digest()
    assert result.counters["dir_lookups_remote"] > 0


def test_home_node_crash_repairs_ring_and_reregisters(monkeypatch):
    """Fault recovery through the partitioned seam: a home-node crash
    repairs the ring synchronously, forgets the dead home's partition,
    and re-registers surviving masters — and the run still completes
    with the fail-stop degraded-never-hung contract intact."""
    monkeypatch.setenv("REPRO_DIRECTORY", "partitioned")
    from repro.experiments.runner import ExperimentConfig, run_experiment
    from repro.sim.faults import FaultEvent, FaultPlan

    plan = FaultPlan((
        FaultEvent("crash", 50.0, node=1),
        FaultEvent("restart", 400.0, node=1),
    ))
    cfg = ExperimentConfig(
        system="cc-kmc", trace=_golden_workload(), num_nodes=4,
        mem_mb_per_node=0.5, num_clients=8, seed=0, faults=plan,
    )
    result = run_experiment(cfg)
    fc = result.fault_counters
    assert fc["node_crashes"] == 1 and fc["node_restarts"] == 1
    assert "dir_entries_lost" in fc
    assert fc.get("dir_reregistered", 0) <= fc["dir_entries_lost"]
    assert result.workload.throughput_rps > 0
