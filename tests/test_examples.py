"""Smoke tests: every shipped example must run and produce its output.

Run as subprocesses with a tiny workload scale so the whole module stays
fast; these guard the public API the examples demonstrate.
"""

import os
import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

SMALL_ENV = {
    **os.environ,
    "REPRO_SCALE": "0.005",
    "REPRO_REQUESTS": "1200",
    "REPRO_CLIENTS": "8",
}


def run_example(name, args=(), timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=SMALL_ENV,
        cwd=str(EXAMPLES.parent),
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "aggregate hit rate" in proc.stdout
        assert "protocol invariants OK" in proc.stdout

    def test_webserver_comparison(self):
        proc = run_example("webserver_comparison.py")
        assert proc.returncode == 0, proc.stderr
        assert "press" in proc.stdout
        assert "cc-kmc" in proc.stdout
        assert "vs PRESS" in proc.stdout

    def test_custom_service(self):
        proc = run_example("custom_service.py")
        assert proc.returncode == 0, proc.stderr
        assert "segment hit rate" in proc.stdout

    def test_scalability(self):
        proc = run_example("scalability.py")
        assert proc.returncode == 0, proc.stderr
        assert "speedup" in proc.stdout

    def test_shared_workspace(self):
        proc = run_example("shared_workspace.py")
        assert proc.returncode == 0, proc.stderr
        assert "dirty blocks remaining:       0" in proc.stdout
        assert "protocol invariants OK" in proc.stdout

    def test_real_trace_embedded_log(self):
        proc = run_example("real_trace.py")
        assert proc.returncode == 0, proc.stderr
        assert "Trace characteristics" in proc.stdout
        assert "4-node cluster" in proc.stdout

    def test_real_trace_with_file(self, tmp_path):
        log = tmp_path / "access_log"
        log.write_text(
            "\n".join(
                f'h{i} - - [d] "GET /f{i % 5}.html HTTP/1.0" 200 {4096 * (1 + i % 3)}'
                for i in range(200)
            )
        )
        proc = run_example("real_trace.py", args=[str(log)])
        assert proc.returncode == 0, proc.stderr
        assert "parsing" in proc.stdout
