"""Tests for the experiment harness: runner, sweeps, report, figures.

Simulation-heavy figure functions are exercised on deliberately tiny
workloads (few files, short traces, few memory points) — shape checks,
not paper-scale numbers; those live in the benchmark harness.
"""

import numpy as np
import pytest

from repro.core import CoopCacheConfig
from repro.experiments import (
    ExperimentConfig,
    banner,
    format_kv,
    format_table,
    memory_sweep,
    node_sweep,
    run_experiment,
    system_label,
    table1,
    render_table1,
)
from repro.traces import Trace, TraceSpec


def tiny_trace(n_files=12, n_requests=300, file_kb=16.0, seed=21):
    rng = np.random.default_rng(seed)
    # Zipf-ish skew via squared uniform.
    popular = (rng.random(n_requests) ** 2 * n_files).astype(int)
    return Trace(
        spec=TraceSpec("tiny", n_files, n_requests, file_kb),
        sizes_kb=np.full(n_files, file_kb),
        requests=np.clip(popular, 0, n_files - 1),
    )


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["name", "val"], [["a", 1.5], ["bb", 20.25]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.50" in out and "20.25" in out

    def test_format_table_none_cell(self):
        out = format_table(["x"], [[None]])
        assert "-" in out

    def test_format_table_title(self):
        out = format_table(["x"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_format_table_ragged_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_table_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_format_kv(self):
        out = format_kv({"alpha": 1.23456, "b": "x"}, title="K")
        assert "alpha" in out and "1.235" in out and out.startswith("K")

    def test_banner(self):
        out = banner("hello")
        assert "# hello #" in out


class TestRunner:
    def test_unknown_system_raises(self):
        with pytest.raises(ValueError, match="unknown system"):
            run_experiment(
                ExperimentConfig(system="nginx", trace=tiny_trace())
            )

    def test_named_systems_run(self):
        trace = tiny_trace()
        for system in ("press", "cc-kmc"):
            res = run_experiment(
                ExperimentConfig(
                    system=system, trace=trace, num_nodes=2,
                    mem_mb_per_node=0.25, num_clients=4,
                )
            )
            assert res.throughput_rps > 0
            assert 0 <= res.hit_rates["total"] <= 1
            assert res.counters  # protocol counters captured

    def test_custom_config_system(self):
        cfg = CoopCacheConfig(policy="basic", forward_on_evict=False)
        res = run_experiment(
            ExperimentConfig(
                system=cfg, trace=tiny_trace(), num_nodes=2,
                mem_mb_per_node=0.25, num_clients=4,
            )
        )
        assert res.throughput_rps > 0
        assert res.config.system_name() == "cc[basic]"

    def test_deterministic(self):
        def run():
            return run_experiment(
                ExperimentConfig(
                    system="cc-kmc", trace=tiny_trace(), num_nodes=2,
                    mem_mb_per_node=0.25, num_clients=4,
                )
            ).throughput_rps

        assert run() == run()

    def test_result_properties(self):
        res = run_experiment(
            ExperimentConfig(
                system="press", trace=tiny_trace(), num_nodes=2,
                mem_mb_per_node=0.5, num_clients=4,
            )
        )
        assert res.mean_response_ms == res.workload.mean_response_ms
        assert res.throughput_rps == res.workload.throughput_rps


class TestSweeps:
    def test_memory_sweep_shape(self):
        trace = tiny_trace()
        out = memory_sweep(
            trace, ["press", "cc-kmc"], memories_mb=[0.125, 0.5],
            num_nodes=2, num_clients=4,
        )
        assert set(out) == {"press", "cc-kmc"}
        assert all(len(v) == 2 for v in out.values())
        mems = [r.config.mem_mb_per_node for r in out["press"]]
        assert mems == [0.125, 0.5]

    def test_memory_sweep_more_memory_not_worse(self):
        trace = tiny_trace(n_files=16, n_requests=500)
        out = memory_sweep(
            trace, ["cc-kmc"], memories_mb=[0.0625, 1.0],
            num_nodes=2, num_clients=8,
        )
        small, big = out["cc-kmc"]
        assert big.hit_rates["total"] >= small.hit_rates["total"]

    def test_node_sweep(self):
        trace = tiny_trace()
        results = node_sweep(
            trace, "cc-kmc", [1, 2, 4], mem_mb_per_node=0.25, num_clients=4
        )
        assert [r.config.num_nodes for r in results] == [1, 2, 4]

    def test_system_label(self):
        assert system_label(CoopCacheConfig()) == "cc[kmc,scan]"
        assert (
            system_label(CoopCacheConfig(forward_on_evict=False))
            == "cc[kmc,scan,nofwd]"
        )
        assert "hints0.9" in system_label(
            CoopCacheConfig(directory="hints", hint_accuracy=0.9)
        )


class TestTables:
    def test_table1_rows(self):
        rows = table1()
        names = [r[0] for r in rows]
        assert any("Parsing" in n for n in names)
        assert any("non-contiguous" in n for n in names)

    def test_render_table1(self):
        out = render_table1()
        assert "Table 1" in out
        assert "0.07ms" in out


class TestFigureHelpers:
    def test_fig1_small(self, monkeypatch):
        import repro.experiments.figures as figs

        monkeypatch.setattr(
            figs.defaults, "workload", lambda name: tiny_trace()
        )
        data = figs.fig1("rutgers", points=5)
        assert data["cum_request_fraction"][-1] == pytest.approx(1.0)
        assert data["mb_for_99pct"] <= data["file_set_mb"]
        out = figs.render_fig1(data)
        assert "Figure 1" in out

    def test_fig6b_render_with_fake_data(self):
        from repro.experiments.figures import render_fig6b

        data = {
            "trace": "rutgers",
            "mem_mb_per_node": 0.64,
            "node_counts": [4, 8],
            "throughput_rps": [1000.0, 1900.0],
            "hit_rates": [0.8, 0.82],
        }
        out = render_fig6b(data)
        assert "Figure 6b" in out
        assert "7.60" in out  # speedup 1.9 x base 4 nodes

    def test_render_fig3_with_fake_data(self):
        from repro.experiments.figures import render_fig3

        data = {
            "calgary-4nodes": {
                "memories_mb": [0.1, 0.2],
                "normalized": {
                    "cc-basic": [0.3, 0.4],
                    "cc-sched": [0.5, 0.6],
                    "cc-kmc": [0.9, 0.95],
                },
            }
        }
        out = render_fig3(data)
        assert "normalized to PRESS" in out
        assert "0.95" in out
