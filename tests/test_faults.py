"""Unit tests for the fault-injection subsystem.

Covers the pieces in isolation — plan construction/serialization, the
injector's state machine, the capped backoff, disk stalls — and the
middleware's crash-recovery logic (directory purge, youngest-replica
re-election, cold restart) through :class:`~repro.core.CoopCacheService`,
which wires the whole chaos stack from one constructor argument.
"""

import pytest

from repro.cache import BlockId
from repro.core import CoopCacheService, variant
from repro.params import DEFAULT_PARAMS
from repro.sim.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    NULL_FAULTS,
)


def make_faulted(plan, sizes=(16.0,) * 4, num_nodes=4, config=None, seed=0):
    return CoopCacheService(
        file_sizes_kb=list(sizes),
        num_nodes=num_nodes,
        mem_mb_per_node=1.0,
        config=config or variant("cc-kmc"),
        seed=seed,
        fault_plan=plan,
    )


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("meteor", 1.0, node=0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent("crash", -1.0, node=0)

    def test_crash_requires_node(self):
        with pytest.raises(ValueError):
            FaultEvent("crash", 1.0)

    def test_link_down_requires_both_endpoints(self):
        with pytest.raises(ValueError):
            FaultEvent("link_down", 1.0, node=0)

    def test_disk_stall_requires_positive_duration(self):
        with pytest.raises(ValueError):
            FaultEvent("disk_stall", 1.0, node=0, extra_ms=0.0)


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan((
            FaultEvent("restart", 20.0, node=0),
            FaultEvent("crash", 10.0, node=0),
        ))
        assert [e.at_ms for e in plan.events] == [10.0, 20.0]
        assert plan.horizon_ms == 20.0
        assert len(plan) == 2 and bool(plan)

    def test_empty_plan_is_falsy(self):
        plan = FaultPlan.none()
        assert len(plan) == 0
        assert not plan
        assert plan.horizon_ms == 0.0

    def test_random_is_deterministic_per_seed(self):
        a = FaultPlan.random(7, 1000.0, 4, crashes_per_node=2.0,
                             link_drops=2, disk_stalls=2, lan_degrade_ms=0.5)
        b = FaultPlan.random(7, 1000.0, 4, crashes_per_node=2.0,
                             link_drops=2, disk_stalls=2, lan_degrade_ms=0.5)
        assert a == b
        c = FaultPlan.random(8, 1000.0, 4, crashes_per_node=2.0)
        assert a != c

    def test_random_covers_requested_kinds(self):
        plan = FaultPlan.random(1, 1000.0, 4, crashes_per_node=2.0,
                                link_drops=1, disk_stalls=1,
                                lan_degrade_ms=0.5)
        kinds = {e.kind for e in plan.events}
        assert {"link_down", "link_up", "disk_stall",
                "lan_degrade", "lan_restore"} <= kinds
        assert kinds <= set(FAULT_KINDS)

    def test_random_keeps_one_node_alive(self):
        # Heavy crash load on a tiny cluster: the generator must refuse
        # any crash that would darken the whole cluster.
        for seed in range(10):
            plan = FaultPlan.random(seed, 1000.0, 2, crashes_per_node=8.0,
                                    mean_downtime_frac=0.5)
            down = set()
            for ev in plan.events:
                if ev.kind == "crash":
                    assert ev.node not in down  # never crash a down node
                    down.add(ev.node)
                    assert len(down) < 2
                elif ev.kind == "restart":
                    down.discard(ev.node)

    def test_random_crash_restart_pairs_balance(self):
        plan = FaultPlan.random(3, 1000.0, 4, crashes_per_node=3.0)
        crashes = sum(1 for e in plan.events if e.kind == "crash")
        restarts = sum(1 for e in plan.events if e.kind == "restart")
        assert crashes == restarts > 0

    def test_json_round_trip(self):
        plan = FaultPlan.random(5, 500.0, 3, crashes_per_node=1.0,
                                link_drops=1, disk_stalls=1)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_dump_load_round_trip(self, tmp_path):
        plan = FaultPlan.random(5, 500.0, 3, crashes_per_node=1.0)
        path = tmp_path / "plan.json"
        plan.dump(str(path))
        assert FaultPlan.load(str(path)) == plan

    def test_random_validates_inputs(self):
        with pytest.raises(ValueError):
            FaultPlan.random(0, 0.0, 4)
        with pytest.raises(ValueError):
            FaultPlan.random(0, 100.0, 0)


class TestInjectorStateMachine:
    def test_crash_and_restart_flip_liveness(self):
        plan = FaultPlan((
            FaultEvent("crash", 100.0, node=1),
            FaultEvent("restart", 200.0, node=1),
        ))
        svc = make_faulted(plan)
        svc.run(until=150.0)
        assert svc.faults.is_down(1)
        assert not svc.node(1).up
        assert svc.faults.alive_node_ids() == [0, 2, 3]
        svc.run(until=250.0)
        assert not svc.faults.is_down(1)
        assert svc.node(1).up
        assert svc.faults.counters.get("node_crashes") == 1
        assert svc.faults.counters.get("node_restarts") == 1

    def test_link_drop_is_symmetric_and_recovers(self):
        plan = FaultPlan((
            FaultEvent("link_down", 100.0, node=0, peer=2),
            FaultEvent("link_up", 200.0, node=0, peer=2),
        ))
        svc = make_faulted(plan)
        svc.run(until=150.0)
        assert not svc.faults.link_ok(0, 2)
        assert not svc.faults.link_ok(2, 0)
        assert svc.faults.link_ok(0, 1)
        assert svc.faults.link_ok(0, 0)  # self-link is always fine
        svc.run(until=250.0)
        assert svc.faults.link_ok(0, 2)

    def test_lan_degrade_sets_extra_latency(self):
        plan = FaultPlan((
            FaultEvent("lan_degrade", 100.0, extra_ms=0.7),
            FaultEvent("lan_restore", 200.0),
        ))
        svc = make_faulted(plan)
        svc.run(until=150.0)
        assert svc.faults.extra_latency_ms() == pytest.approx(0.7)
        svc.run(until=250.0)
        assert svc.faults.extra_latency_ms() == 0.0

    def test_fault_listeners_see_every_event(self):
        plan = FaultPlan((
            FaultEvent("crash", 100.0, node=1),
            FaultEvent("restart", 200.0, node=1),
        ))
        svc = make_faulted(plan)
        seen = []
        svc.faults.fault_listeners.append(lambda ev: seen.append(ev.kind))
        svc.run()
        assert seen == ["crash", "restart"]


class TestBackoff:
    def _injector(self, seed):
        plan = FaultPlan((FaultEvent("crash", 1.0, node=0),))
        return FaultInjector(plan, DEFAULT_PARAMS, seed=seed)

    def test_hard_cap_never_exceeded(self):
        inj = self._injector(7)
        f = DEFAULT_PARAMS.faults
        vals = [inj.backoff_ms(a) for a in range(20)]
        assert all(v <= f.backoff_cap_ms for v in vals)
        # Far past the cap the jitter cannot matter: exactly the cap.
        assert vals[-1] == f.backoff_cap_ms

    def test_exponential_growth_within_jitter_envelope(self):
        inj = self._injector(7)
        f = DEFAULT_PARAMS.faults
        for attempt in range(4):  # well under the cap
            v = inj.backoff_ms(attempt)
            lo = f.backoff_base_ms * (2.0 ** attempt)
            assert lo <= v <= lo * (1.0 + f.backoff_jitter)

    def test_jitter_is_deterministic_per_seed(self):
        a = [self._injector(7).backoff_ms(i) for i in range(8)]
        b = [self._injector(7).backoff_ms(i) for i in range(8)]
        c = [self._injector(8).backoff_ms(i) for i in range(8)]
        assert a == b
        assert a != c

    def test_null_injector_is_inert(self):
        assert NULL_FAULTS.active is False
        assert NULL_FAULTS.backoff_ms(5) == 0.0
        assert not NULL_FAULTS.is_down(0)
        assert NULL_FAULTS.link_ok(0, 1)
        assert NULL_FAULTS.extra_latency_ms() == 0.0
        # No counters: fault paths must guard on .active before counting.
        assert not hasattr(NULL_FAULTS, "counters")


class TestDiskStall:
    def test_stall_delays_completion(self):
        def finish_time(plan):
            svc = make_faulted(plan, sizes=(16.0,))
            svc.submit(svc.layer.read(svc.node(0), 0))
            svc.run()
            return svc.sim.now

        base = finish_time(FaultPlan.none())
        stalled = finish_time(
            FaultPlan((FaultEvent("disk_stall", 0.0, node=0, extra_ms=25.0),))
        )
        # The head is frozen for the stall's full 25 ms; the request
        # spends under a millisecond of protocol time reaching the disk,
        # so the completion slips by (almost) the whole stall.
        assert stalled >= 25.0
        assert stalled >= base + 24.0


class TestCrashRecovery:
    """The middleware's fail-stop repair (DESIGN.md S14)."""

    def test_crash_clears_exactly_its_directory_entries(self):
        plan = FaultPlan((FaultEvent("crash", 1000.0, node=1),))
        svc = make_faulted(plan)

        def flow():
            yield svc.submit(svc.layer.read(svc.node(1), 1))  # masters at 1
            yield svc.submit(svc.layer.read(svc.node(0), 0))  # masters at 0

        svc.submit(flow())
        svc.run(until=500.0)
        assert svc.layer.directory.masters_at(1) == 2
        assert svc.layer.directory.masters_at(0) == 2
        svc.run()  # the crash fires at t=1000
        # Node 1's entries are gone (no surviving replica), node 0's are
        # untouched; node 1's memory is empty.
        assert svc.layer.directory.masters_at(1) == 0
        assert svc.layer.directory.masters_at(0) == 2
        assert len(svc.layer.caches[1]) == 0
        fc = svc.faults.counters
        assert fc.get("cc_masters_purged") == 2
        assert fc.get("cc_blocks_lost") == 2
        assert fc.get("cc_masters_reelected") == 0
        svc.layer.check_invariants()

    def test_youngest_replica_reelected_in_place(self):
        plan = FaultPlan((FaultEvent("crash", 1000.0, node=1),))
        svc = make_faulted(plan)

        def flow():
            yield svc.submit(svc.layer.read(svc.node(1), 1))  # masters at 1
            yield svc.submit(svc.layer.read(svc.node(2), 1))  # replica at 2
            yield svc.submit(svc.layer.read(svc.node(3), 1))  # replica at 3

        svc.submit(flow())
        svc.run()
        # Node 3 read last, so its replicas are youngest: promoted in
        # place, directory updated, no data movement.
        for blk in svc.layer.layout.blocks(1):
            assert svc.layer.directory.lookup(blk) == 3
            assert svc.layer.caches[3].is_master(blk)
            assert blk not in svc.layer.caches[1]
        assert svc.faults.counters.get("cc_masters_reelected") == 2
        svc.layer.check_invariants()

    def test_reelection_tie_breaks_to_lowest_node_id(self):
        svc = make_faulted(FaultPlan((FaultEvent("crash", 1e9, node=1),)))
        blk = BlockId(0, 0)
        svc.layer.caches[3].insert(blk, master=False, age=5.0)
        svc.layer.caches[2].insert(blk, master=False, age=5.0)
        assert svc.layer._youngest_replica(blk, exclude=1) == 2

    def test_reelection_skips_down_nodes(self):
        plan = FaultPlan((
            FaultEvent("crash", 900.0, node=2),   # replica holder dies first
            FaultEvent("crash", 1000.0, node=1),  # then the master holder
        ))
        svc = make_faulted(plan)

        def flow():
            yield svc.submit(svc.layer.read(svc.node(1), 1))
            yield svc.submit(svc.layer.read(svc.node(2), 1))

        svc.submit(flow())
        svc.run()
        # The only replica holder was already down: nothing to promote.
        for blk in svc.layer.layout.blocks(1):
            assert svc.layer.directory.lookup(blk) is None
        assert svc.faults.counters.get("cc_masters_reelected") == 0
        svc.layer.check_invariants()

    def test_restart_rejoins_cold_and_reregisters_only_refetched(self):
        plan = FaultPlan((
            FaultEvent("crash", 1000.0, node=1),
            FaultEvent("restart", 2000.0, node=1),
        ))
        svc = make_faulted(plan, sizes=(16.0,) * 8)

        def before():
            yield svc.submit(svc.layer.read(svc.node(1), 1))  # file 1 at 1
            yield svc.submit(svc.layer.read(svc.node(1), 5))  # file 5 at 1

        svc.submit(before())
        svc.run(until=500.0)
        assert svc.layer.directory.masters_at(1) == 4
        svc.run(until=2500.0)  # crash + restart both fired
        # Cold rejoin: empty memory, nothing re-registered by itself.
        assert len(svc.layer.caches[1]) == 0
        assert svc.layer.directory.masters_at(1) == 0
        # Only a re-fetch through the normal read path re-creates masters.
        svc.submit(svc.layer.read(svc.node(1), 1))
        svc.run()
        assert svc.layer.directory.masters_at(1) == 2
        for blk in svc.layer.layout.blocks(1):
            assert svc.layer.caches[1].is_master(blk)
        for blk in svc.layer.layout.blocks(5):  # never re-read: still gone
            assert svc.layer.directory.lookup(blk) is None
        assert svc.faults.counters.get("cc_dirty_lost") == 0
        svc.layer.check_invariants()
