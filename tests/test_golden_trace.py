"""Golden-trace regression tests.

A small fixed-seed Figure-2-style experiment is run for each of the four
server variants with tracing on; the trace digest, span count and full
metrics snapshot are compared byte-for-byte against fingerprints stored
under ``tests/golden/``.  Any unintended behavioral drift in the cache
algorithms — a changed eviction choice, an extra peer hop, a perturbed
event ordering — changes the trace and fails the comparison.

To refresh after an *intended* behavior change::

    REPRO_REFRESH_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_trace.py

then review and commit the diff under ``tests/golden/``.

The workload is built directly from a scaled trace spec (not via
``repro.experiments.defaults``), so the fingerprints are independent of
the ``REPRO_*`` environment knobs.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.obs import Observability
from repro.traces import datasets

GOLDEN_DIR = Path(__file__).parent / "golden"
#: Separate fingerprints for runs under ``REPRO_DIRECTORY=partitioned``.
PARTITIONED_GOLDEN_DIR = GOLDEN_DIR / "partitioned"

#: The four Figure-2 curves.
SYSTEMS = ["cc-basic", "cc-sched", "cc-kmc", "press"]


@pytest.fixture(autouse=True)
def _pin_directory_env(monkeypatch):
    """Golden fingerprints are knob-independent: every test here states
    its directory mode explicitly (setenv below), so an inherited
    ``REPRO_DIRECTORY`` — e.g. from the partitioned CI matrix leg —
    must not leak into the baseline runs."""
    monkeypatch.delenv("REPRO_DIRECTORY", raising=False)


def _workload():
    # ~380 files / 400 requests of rutgers-shaped traffic: big enough to
    # exercise peer fetches, disk runs, evictions and writebacks, small
    # enough to run all four systems in a few seconds.
    return datasets.scaled("rutgers", 0.01, num_requests=400)


def _run(system, workload=None):
    cfg = ExperimentConfig(
        system=system,
        trace=workload if workload is not None else _workload(),
        num_nodes=4,
        # 64 blocks per node versus an ~8 MB file set: eviction-heavy.
        mem_mb_per_node=0.5,
        num_clients=8,
        seed=0,
    )
    obs = Observability(trace=True)
    run_experiment(cfg, obs=obs)
    return obs


def _fingerprint(obs):
    return {
        "trace_digest": obs.tracer.digest(),
        "trace_spans": len(obs.tracer.records),
        "metrics": obs.registry.snapshot(),
    }


def _serialize(fingerprint):
    return json.dumps(fingerprint, indent=2, sort_keys=True, default=float) + "\n"


@pytest.mark.parametrize("system", SYSTEMS)
def test_golden(system):
    path = GOLDEN_DIR / f"{system}.json"
    current = _serialize(_fingerprint(_run(system)))
    if os.environ.get("REPRO_REFRESH_GOLDEN"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(current)
    assert path.exists(), (
        f"golden file {path} missing; generate it with "
        "REPRO_REFRESH_GOLDEN=1 and commit the result"
    )
    golden = path.read_text()
    assert current == golden, (
        f"{system} drifted from its golden fingerprint; if the change is "
        "intended, refresh with REPRO_REFRESH_GOLDEN=1 and review the diff"
    )


@pytest.mark.parametrize("system", SYSTEMS)
def test_golden_under_calendar_scheduler(system, monkeypatch):
    """Full-system scheduler equivalence: with the calendar queue behind
    the kernel (``REPRO_SCHEDULER=calendar``), every golden fingerprint
    — trace digest, span count, full metrics snapshot — is reproduced
    byte-for-byte.  The unit-level half of this argument lives in
    ``test_scheduler_differential.py``."""
    monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
    path = GOLDEN_DIR / f"{system}.json"
    assert path.exists(), "golden files must exist before this check"
    assert _serialize(_fingerprint(_run(system))) == path.read_text()


@pytest.mark.parametrize("system", SYSTEMS)
def test_golden_under_oracle_env(system, monkeypatch):
    """Directory-knob neutrality: ``REPRO_DIRECTORY=oracle`` is the
    explicit spelling of the default and reproduces every golden
    fingerprint byte-for-byte."""
    monkeypatch.setenv("REPRO_DIRECTORY", "oracle")
    path = GOLDEN_DIR / f"{system}.json"
    assert path.exists(), "golden files must exist before this check"
    assert _serialize(_fingerprint(_run(system))) == path.read_text()


@pytest.mark.parametrize("system", SYSTEMS)
def test_golden_partitioned(system, monkeypatch):
    """The partitioned directory gets its own committed fingerprints:
    same workload, ``REPRO_DIRECTORY=partitioned``.  Hop charging and
    the staleness window make these legitimately different traces from
    the oracle's — pinned so partitioned-mode behavior can't drift
    silently either."""
    monkeypatch.setenv("REPRO_DIRECTORY", "partitioned")
    path = PARTITIONED_GOLDEN_DIR / f"{system}.json"
    current = _serialize(_fingerprint(_run(system)))
    if os.environ.get("REPRO_REFRESH_GOLDEN"):
        PARTITIONED_GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(current)
    assert path.exists(), (
        f"golden file {path} missing; generate it with "
        "REPRO_REFRESH_GOLDEN=1 and commit the result"
    )
    assert current == path.read_text(), (
        f"{system} (partitioned) drifted from its golden fingerprint; "
        "if the change is intended, refresh with REPRO_REFRESH_GOLDEN=1 "
        "and review the diff"
    )


def test_partitioned_press_golden_equals_oracle():
    """PRESS never consults the middleware directory, so its partitioned
    fingerprint must be byte-identical to its oracle one — pinning that
    the env knob touches exactly the systems it claims to."""
    oracle = (GOLDEN_DIR / "press.json").read_text()
    partitioned = (PARTITIONED_GOLDEN_DIR / "press.json").read_text()
    assert oracle == partitioned


def test_run_twice_byte_identical():
    """The determinism contract behind the golden files: same seed, same
    bytes — for both the trace JSONL and the metrics JSON."""
    workload = _workload()
    first = _run("cc-kmc", workload)
    second = _run("cc-kmc", workload)
    assert first.tracer.to_jsonl() == second.tracer.to_jsonl()
    assert first.registry.to_json() == second.registry.to_json()


@pytest.mark.parametrize("system", SYSTEMS)
def test_zero_fault_plan_reproduces_golden(system):
    """Fault-injection neutrality: an *explicit* empty FaultPlan leaves
    the kernel event stream — and therefore every golden fingerprint —
    byte-for-byte unchanged.  This is the contract that lets the chaos
    subsystem live permanently in the hot paths."""
    from repro.sim.faults import FaultPlan

    path = GOLDEN_DIR / f"{system}.json"
    assert path.exists(), "golden files must exist before this check"
    cfg = ExperimentConfig(
        system=system,
        trace=_workload(),
        num_nodes=4,
        mem_mb_per_node=0.5,
        num_clients=8,
        seed=0,
        faults=FaultPlan.none(),
    )
    obs = Observability(trace=True)
    run_experiment(cfg, obs=obs)
    assert _serialize(_fingerprint(obs)) == path.read_text()


def test_trace_disabled_run_matches_traced_run():
    """Tracing is pure observation: the metrics a run produces are the
    same whether or not the tracer is recording."""
    workload = _workload()
    traced = _run("cc-basic", workload)

    cfg = ExperimentConfig(
        system="cc-basic", trace=workload, num_nodes=4,
        mem_mb_per_node=0.5, num_clients=8, seed=0,
    )
    silent = Observability(trace=False)
    run_experiment(cfg, obs=silent)
    assert silent.registry.to_json() == traced.registry.to_json()
