"""Property tests for the consistent-hash ring and stable hash.

Three claims the PartitionedDirectory leans on (DESIGN.md S19):

* **Cross-process determinism** — ``stable_hash`` is a keyed BLAKE2b
  digest, not the builtin ``hash()``: the same (key, seed) maps to the
  same point in every process regardless of ``PYTHONHASHSEED``, so a
  sharded sweep's workers and a re-run agree on every block's home.
* **Bounded movement** — adding or removing one node remaps only ~K/N
  of the keys, all of them to the joining node (or away from the
  leaving one).  This is the consistent-hashing contract the crash
  repair depends on: a crash invalidates one arc, not the directory.
* **Virtual-node spread** — with enough virtual nodes per node the
  arc sizes concentrate: max/mean ownership stays within a small
  constant, so no node's partition is pathologically hot.

Plus the staleness bookkeeping of the directory itself: a routing
answer never reflects state older than ``staleness_ms``.
"""

import subprocess
import sys

import pytest

from repro.cache.block import BlockId
from repro.cache.hashring import HashRing, PartitionedDirectory, stable_hash

KEYS = [f"b:{f}:{i}" for f in range(200) for i in range(10)]


# ---------------------------------------------------------------------------
# stable_hash
# ---------------------------------------------------------------------------
def test_stable_hash_pinned_values():
    # Pinned across processes, platforms and Python versions: these are
    # keyed BLAKE2b digests, so any drift means the hash (and with it
    # every committed partitioned golden) changed.
    assert stable_hash("x") == 10265795031950503558
    assert stable_hash("x", 1) == 16621578663882389290
    assert stable_hash("b:7:3") == 12912738216912810184


def test_stable_hash_seed_separates():
    assert stable_hash("x", 0) != stable_hash("x", 1)
    assert stable_hash("x", 0) == stable_hash("x", 0)


def test_stable_hash_is_not_process_salted():
    # The builtin hash() would differ under another PYTHONHASHSEED; the
    # ring hash must not (SL02: no ambient process randomness).
    code = (
        "import sys; sys.path.insert(0, 'src'); "
        "from repro.cache.hashring import stable_hash; "
        "print(stable_hash('x'), stable_hash('b:7:3', 5))"
    )
    outs = set()
    for hashseed in ("0", "12345"):
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            env={"PYTHONHASHSEED": hashseed, "PATH": "/usr/bin:/bin"},
            cwd=".",
        )
        outs.add(proc.stdout.strip())
    assert len(outs) == 1
    assert outs.pop().split()[0] == "10265795031950503558"


# ---------------------------------------------------------------------------
# ring movement and spread
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("vnodes", [32, 64])
def test_join_moves_few_keys_and_only_to_new_node(vnodes):
    ring = HashRing(range(16), vnodes=vnodes, seed=0)
    before = {k: ring.owner(k) for k in KEYS}
    ring.add_node(16)
    after = {k: ring.owner(k) for k in KEYS}
    moved = [k for k in KEYS if before[k] != after[k]]
    # Ideal movement is 1/(N+1) of the keys; allow 2.5x for vnode noise.
    assert len(moved) <= 2.5 * len(KEYS) / 17
    assert moved, "a joining node must take over some keys"
    assert all(after[k] == 16 for k in moved)


@pytest.mark.parametrize("vnodes", [32, 64])
def test_leave_moves_only_the_leaving_nodes_keys(vnodes):
    ring = HashRing(range(16), vnodes=vnodes, seed=0)
    before = {k: ring.owner(k) for k in KEYS}
    ring.remove_node(3)
    after = {k: ring.owner(k) for k in KEYS}
    moved = [k for k in KEYS if before[k] != after[k]]
    assert len(moved) <= 2.5 * len(KEYS) / 16
    assert all(before[k] == 3 for k in moved)
    assert all(before[k] != 3 or after[k] != 3 for k in KEYS)


def test_join_then_leave_roundtrips():
    ring = HashRing(range(8), vnodes=32, seed=0)
    before = {k: ring.owner(k) for k in KEYS}
    ring.add_node(8)
    ring.remove_node(8)
    assert {k: ring.owner(k) for k in KEYS} == before


@pytest.mark.parametrize("num_nodes", [8, 16])
def test_vnode_spread_bounded(num_nodes):
    ring = HashRing(range(num_nodes), vnodes=64, seed=0)
    counts = dict.fromkeys(range(num_nodes), 0)
    total = 20_000
    for i in range(total):
        counts[ring.owner(f"k:{i}")] += 1
    mean = total / num_nodes
    assert max(counts.values()) / mean < 1.75
    assert min(counts.values()) / mean > 0.4


def test_ring_owner_total_and_deterministic():
    a = HashRing(range(5), vnodes=16, seed=7)
    b = HashRing([4, 2, 0, 3, 1], vnodes=16, seed=7)  # insertion order free
    for k in KEYS[:100]:
        owner = a.owner(k)
        assert 0 <= owner < 5
        assert b.owner(k) == owner


def test_ring_rejects_empty_and_duplicates():
    with pytest.raises(ValueError):
        HashRing([], vnodes=8)
    with pytest.raises(ValueError):
        HashRing([1, 1], vnodes=8)
    with pytest.raises(ValueError):
        HashRing([0], vnodes=0)


# ---------------------------------------------------------------------------
# PartitionedDirectory staleness bookkeeping
# ---------------------------------------------------------------------------
class _FakeSim:
    """Stand-in clock: the directory only reads ``.now``."""

    def __init__(self):
        self.now = 0.0


def test_zero_staleness_routes_are_truth():
    d = PartitionedDirectory(4, staleness_ms=0.0)
    blk = BlockId(1, 0)
    d.set_master(blk, 2)
    assert d.route_lookup(blk) == d.lookup(blk) == 2
    d.clear_master(blk)
    assert d.route_lookup(blk) is None
    assert d.stale_served == 0


def test_staleness_window_serves_old_view_then_expires():
    sim = _FakeSim()
    d = PartitionedDirectory(4, staleness_ms=1.0)
    d.attach(sim)
    blk = BlockId(1, 0)
    d.set_master(blk, 2)          # stale view: None until t=1.0
    assert d.lookup(blk) == 2      # consistency path sees truth at once
    assert d.route_lookup(blk) is None
    sim.now = 0.5
    d.set_master(blk, 3)           # does NOT extend the window (oldest wins)
    assert d.route_lookup(blk) is None
    sim.now = 0.99
    assert d.route_lookup(blk) is None
    sim.now = 1.0                  # window closed: truth from here on
    assert d.route_lookup(blk) == 3
    assert d.stale_served == 3
    assert d.lookups == 4


def test_staleness_bound_holds_under_churn():
    # Invariant: route_lookup at time t equals the authoritative value
    # as it stood at some instant in [t - staleness, t].  Simulated time
    # only moves forward, so mutations and queries share one timeline.
    sim = _FakeSim()
    d = PartitionedDirectory(4, staleness_ms=2.0)
    d.attach(sim)
    blk = BlockId(0, 0)
    history = [(0.0, None)]  # (time, truth-from-here) timeline
    timeline = [
        ("set", 0.0, 1), ("query", 0.4, None), ("set", 0.5, 2),
        ("query", 0.9, None), ("clear", 1.0, None), ("query", 1.4, None),
        ("set", 1.5, 3), ("query", 1.9, None), ("query", 2.1, None),
        ("query", 3.4, None), ("set", 4.0, 0), ("query", 4.2, None),
        ("query", 6.1, None),
    ]
    for op, t, holder in timeline:
        sim.now = t
        if op == "set":
            d.set_master(blk, holder)
            history.append((t, holder))
        elif op == "clear":
            d.clear_master(blk)
            history.append((t, None))
        else:
            answer = d.route_lookup(blk)
            window = [v for (ts, v) in history if t - 2.0 <= ts <= t]
            # the value carried into the window from before its left
            # edge was still true at that edge, so it counts too
            older = [v for (ts, v) in history if ts < t - 2.0]
            if older:
                window.insert(0, older[-1])
            assert answer in window, (t, answer, window)
    assert d.stale_served > 0  # the windows actually exercised staleness


def test_crash_never_serves_dead_node_from_stale_record():
    sim = _FakeSim()
    d = PartitionedDirectory(4, staleness_ms=0.5)
    d.attach(sim)
    # A block homed away from node 1, so the crash invalidation under
    # test is the stale-record one, not the lost-partition one.
    blk = next(
        BlockId(f, 0) for f in range(16) if d.home_of(BlockId(f, 0)) != 1
    )
    d.set_master(blk, 1)           # window [0, 0.5) records None
    sim.now = 1.0                  # ...which has expired by now
    d.set_master(blk, 2)           # fresh stale record names node 1
    assert d._stale[blk][0] == 1
    d.partition_crash(1)           # node 1 is a corpse
    assert d.route_lookup(blk) == 2


def test_partition_crash_reports_lost_homed_entries():
    d = PartitionedDirectory(4, staleness_ms=0.0)
    entries = {}
    for f in range(40):
        blk = BlockId(f, 0)
        holder = f % 4
        d.set_master(blk, holder)
        entries[blk] = holder
    victim = 2
    homed_elsewhere_held = {
        blk: holder for blk, holder in entries.items()
        if d.home_of(blk) == victim and holder != victim
    }
    lost = d.partition_crash(victim)
    assert dict(lost) == homed_elsewhere_held
    for blk in homed_elsewhere_held:
        assert d.lookup(blk) is None      # directory knowledge is gone...
    for blk, holder in entries.items():
        if blk not in homed_elsewhere_held and holder != victim:
            assert d.lookup(blk) == holder  # ...but other arcs untouched
    assert victim not in d.ring.nodes
    d.partition_rejoin(victim)
    assert victim in d.ring.nodes


def test_partition_crash_keeps_last_ring_member():
    d = PartitionedDirectory(2, staleness_ms=0.0)
    d.partition_crash(0)
    assert d.partition_crash(1) == []     # refuses to empty the ring
    assert d.ring.nodes == [1]
    assert d.home_of(BlockId(0, 0)) == 1  # home_of stays total


def test_partitioned_directory_validates():
    with pytest.raises(ValueError):
        PartitionedDirectory(0)
    with pytest.raises(ValueError):
        PartitionedDirectory(4, vnodes=0)
    with pytest.raises(ValueError):
        PartitionedDirectory(4, staleness_ms=-1.0)
