"""CC-KMC "keep master copies" invariant, verified by sampling.

The KMC policy's defining promise: a node never evicts a master copy
while it still holds a non-master copy it could give up instead.  Two
independent witnesses check this across randomized workloads:

* the :class:`~repro.obs.InvariantSampler` runs the middleware's full
  ``check_invariants`` after **every** kernel event (``invariant_every=1``),
  so any corrupt directory/cache state raises mid-run;
* every eviction leaves an ``evict`` point on the trace recording whether
  the victim was a master and how many non-masters the node held at that
  instant — the test asserts no KMC eviction ever chose a master while a
  non-master was available.

A control run shows the assertion has teeth: CC-Basic's global-age
policy (which makes no such promise) trips it constantly.
"""

from hypothesis import given, settings, strategies as st

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.obs import Observability
from repro.traces import datasets

workloads = st.sampled_from([
    ("rutgers", 0.005, 150),
    ("rutgers", 0.01, 300),
    ("clarknet", 0.005, 150),
    ("nasa", 0.005, 150),
])


def _run(system, workload, num_nodes, num_clients, mem_mb):
    name, factor, num_requests = workload
    obs = Observability(trace=True, invariant_every=1)
    run_experiment(
        ExperimentConfig(
            system=system,
            trace=datasets.scaled(name, factor, num_requests=num_requests),
            num_nodes=num_nodes,
            mem_mb_per_node=mem_mb,
            num_clients=num_clients,
            seed=0,
        ),
        obs=obs,
    )
    return obs


def _master_evictions_with_nonmasters(obs):
    return [
        rec for rec in obs.tracer.records
        if rec["name"] == "evict"
        and rec["attrs"]["master"]
        and rec["attrs"]["nonmasters"] > 0
    ]


@settings(max_examples=6, deadline=None)
@given(
    workload=workloads,
    num_nodes=st.integers(min_value=2, max_value=5),
    num_clients=st.integers(min_value=2, max_value=12),
    mem_mb=st.sampled_from([0.25, 0.5]),
)
def test_kmc_never_evicts_master_over_nonmaster(
    workload, num_nodes, num_clients, mem_mb
):
    obs = _run("cc-kmc", workload, num_nodes, num_clients, mem_mb)

    # check_invariants ran after every kernel event and never raised.
    assert obs.sampler is not None
    assert obs.sampler.checks_run == obs.sampler.events_seen > 0

    evicts = [r for r in obs.tracer.records if r["name"] == "evict"]
    assert all(r["attrs"]["policy"] == "kmc" for r in evicts)
    assert _master_evictions_with_nonmasters(obs) == []


def test_kmc_eviction_heavy_case():
    """A pinned config guaranteed to evict a lot, so the property above
    is exercised for real (small clusters can be violation-free simply
    by never evicting)."""
    obs = _run("cc-kmc", ("rutgers", 0.01, 300), 4, 8, 0.25)
    assert len([r for r in obs.tracer.records if r["name"] == "evict"]) > 100
    assert _master_evictions_with_nonmasters(obs) == []


def test_basic_policy_does_evict_masters_control():
    """Control: without KMC, masters do get evicted over non-masters —
    proof the assertion above is not vacuous."""
    obs = _run("cc-basic", ("rutgers", 0.01, 300), 4, 8, 0.5)
    assert _master_evictions_with_nonmasters(obs)
