"""Tests for the simlint static-analysis suite (src/repro/lint).

Each rule gets paired good/bad fixtures, the pragma contract (disable /
ordered / SL00 hygiene) is exercised directly, the JSON report shape is
pinned, and the final test self-hosts the linter over ``src/repro`` —
the repository must stay clean under its own rules.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    JSON_SCHEMA_VERSION,
    LintConfig,
    all_rules,
    lint_source,
    rule_catalog,
    to_json_dict,
)
from repro.lint.__main__ import main as lint_main
from repro.lint.config import load_config, path_matches
from repro.lint.engine import iter_python_files
from repro.lint.report import render_text

REPO_ROOT = Path(__file__).resolve().parent.parent

# A path inside every default rule scope.
CORE = "src/repro/core/example.py"


def run(source, path=CORE, config=None, select=None):
    """Lint a source snippet; returns the list of findings."""
    rules = all_rules()
    if select:
        rules = [r for r in rules if r.id in select]
    return lint_source(path, textwrap.dedent(source), config or LintConfig(),
                       rules)


def rule_ids(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# SL01 — unordered iteration
# ---------------------------------------------------------------------------

class TestSL01:
    def test_set_literal_iteration_flagged(self):
        findings = run("""
            for x in {1, 2, 3}:
                print(x)
        """)
        assert rule_ids(findings) == ["SL01"]

    def test_dict_view_iteration_flagged(self):
        findings = run("""
            def f(d):
                for k, v in d.items():
                    yield k
        """)
        assert rule_ids(findings) == ["SL01"]

    def test_set_call_iteration_flagged(self):
        findings = run("""
            def f(xs):
                return [x for x in set(xs)]
        """)
        assert rule_ids(findings) == ["SL01"]

    def test_sorted_wrapper_clean(self):
        findings = run("""
            def f(d):
                for k in sorted(d.keys()):
                    yield k
                return [v for v in sorted(set(d))]
        """)
        assert findings == []

    def test_transparent_wrapper_still_flagged(self):
        findings = run("""
            def f(d):
                for i, kv in enumerate(d.items()):
                    yield i
        """)
        assert rule_ids(findings) == ["SL01"]

    def test_order_sensitive_consumer_flagged(self):
        findings = run("""
            def f(d):
                return list(d.values())
        """)
        assert rule_ids(findings) == ["SL01"]

    def test_order_insensitive_consumers_clean(self):
        findings = run("""
            def f(d):
                return max(d.values()), len(d), any(d.values())
        """)
        assert findings == []

    def test_ordered_pragma_accepted(self):
        findings = run("""
            def f(d):
                # simlint: ordered -- inserts are event-ordered.
                for k in d.keys():
                    yield k
        """)
        assert findings == []

    def test_out_of_scope_path_clean(self):
        findings = run("""
            for x in {1, 2}:
                print(x)
        """, path="src/repro/experiments/report.py")
        assert findings == []


# ---------------------------------------------------------------------------
# SL02 — wall clock / ambient randomness
# ---------------------------------------------------------------------------

class TestSL02:
    def test_wall_clock_flagged(self):
        findings = run("""
            import time
            t = time.time()
        """)
        assert rule_ids(findings) == ["SL02"]

    def test_datetime_now_flagged(self):
        findings = run("""
            from datetime import datetime
            t = datetime.now()
        """)
        assert rule_ids(findings) == ["SL02"]

    def test_bare_random_flagged(self):
        findings = run("""
            import random
            x = random.random()
        """)
        assert rule_ids(findings) == ["SL02"]

    def test_unseeded_default_rng_flagged(self):
        findings = run("""
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert rule_ids(findings) == ["SL02"]

    def test_seeded_default_rng_clean(self):
        findings = run("""
            import numpy as np
            rng = np.random.default_rng(42)
        """)
        assert findings == []

    def test_monotonic_flagged(self):
        findings = run("""
            import time
            t = time.monotonic()
        """)
        assert rule_ids(findings) == ["SL02"]

    def test_rng_module_exempt(self):
        findings = run("""
            import random
            x = random.random()
        """, path="src/repro/sim/rng.py")
        assert findings == []


# ---------------------------------------------------------------------------
# SL03 — float equality on time / byte quantities
# ---------------------------------------------------------------------------

class TestSL03:
    def test_time_equality_flagged(self):
        findings = run("""
            def f(now, deadline):
                return now == deadline
        """)
        assert rule_ids(findings) == ["SL03"]

    def test_kb_inequality_flagged(self):
        findings = run("""
            def f(used_kb):
                return used_kb != 0.0
        """)
        assert rule_ids(findings) == ["SL03"]

    def test_attribute_quantity_flagged(self):
        findings = run("""
            def f(self, other):
                return self.size_kb == other.size_kb
        """)
        assert rule_ids(findings) == ["SL03"]

    def test_non_quantity_names_clean(self):
        findings = run("""
            def f(policy, node_id):
                return policy == "kmc" and node_id == 3
        """)
        assert findings == []

    def test_ordering_comparisons_clean(self):
        findings = run("""
            def f(now, deadline):
                return now < deadline or now >= deadline
        """)
        assert findings == []

    def test_disable_pragma_with_reason(self):
        findings = run("""
            def f(age, current):
                # simlint: disable=SL03 -- same stored float, not arithmetic.
                return current == age
        """)
        assert findings == []


# ---------------------------------------------------------------------------
# SL04 — cache-internal reach-ins
# ---------------------------------------------------------------------------

class TestSL04:
    def test_reach_in_flagged(self):
        findings = run("""
            def flush(cache):
                return [blk for blk in cache._dirty]
        """)
        # _dirty iteration is a reach-in; the dict-as-set itself is
        # insertion-ordered so SL01 stays quiet.
        assert "SL04" in rule_ids(findings)

    def test_self_access_in_owner_file_clean(self):
        findings = run("""
            class BlockCache:
                def purge(self):
                    self._dirty.clear()
        """, path="src/repro/cache/blockcache.py")
        assert findings == []

    def test_self_access_outside_owner_clean(self):
        # `self._dirty` in a non-owner file is that class's own attribute,
        # not a reach into BlockCache.
        findings = run("""
            class Other:
                def reset(self):
                    self._dirty = {}
        """)
        assert findings == []


# ---------------------------------------------------------------------------
# SL05 — mutable default arguments
# ---------------------------------------------------------------------------

class TestSL05:
    @pytest.mark.parametrize("default", ["[]", "{}", "set()", "dict()",
                                         "list()", "bytearray()"])
    def test_mutable_default_flagged(self, default):
        findings = run(f"""
            def f(x={default}):
                return x
        """)
        assert rule_ids(findings) == ["SL05"]

    def test_defaultdict_default_flagged(self):
        findings = run("""
            import collections
            def f(x=collections.defaultdict(list)):
                return x
        """)
        assert rule_ids(findings) == ["SL05"]

    def test_immutable_defaults_clean(self):
        findings = run("""
            def f(a=(), b=None, c=0, d="x", e=frozenset()):
                return a, b, c, d, e
        """)
        assert findings == []

    def test_lambda_default_flagged(self):
        findings = run("""
            g = lambda x=[]: x
        """)
        assert rule_ids(findings) == ["SL05"]


# ---------------------------------------------------------------------------
# SL00 — suppression hygiene, pragma placement
# ---------------------------------------------------------------------------

class TestPragmas:
    def test_unjustified_disable_is_a_finding_and_does_not_suppress(self):
        findings = run("""
            import time
            t = time.time()  # simlint: disable=SL02
        """)
        assert sorted(rule_ids(findings)) == ["SL00", "SL02"]

    def test_malformed_disable_flagged(self):
        findings = run("""
            x = 1  # simlint: disable= -- empty rule list
        """)
        assert rule_ids(findings) == ["SL00"]

    def test_unknown_pragma_flagged(self):
        findings = run("""
            x = 1  # simlint: frobnicate -- not a directive
        """)
        assert rule_ids(findings) == ["SL00"]

    def test_own_line_pragma_governs_next_code_line(self):
        findings = run("""
            import time
            # simlint: disable=SL02 -- fixture exercising pragma placement.
            t = time.time()
        """)
        assert findings == []

    def test_trailing_pragma_governs_its_line(self):
        findings = run("""
            import time
            t = time.time()  # simlint: disable=SL02 -- fixture.
        """)
        assert findings == []

    def test_disable_does_not_leak_to_other_lines(self):
        findings = run("""
            import time
            t = time.time()  # simlint: disable=SL02 -- only this line.
            u = time.time()
        """)
        assert rule_ids(findings) == ["SL02"]

    def test_syntax_error_reported_as_sl00(self):
        findings = run("def broken(:\n")
        assert rule_ids(findings) == ["SL00"]


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

class TestReports:
    def _findings(self):
        return run("""
            import time
            t = time.time()
            for x in {1, 2}:
                print(x)
        """)

    def test_json_document_shape(self):
        findings = self._findings()
        doc = to_json_dict(findings, files_checked=1)
        assert set(doc) == {"schema", "tool", "findings", "summary"}
        assert doc["schema"] == JSON_SCHEMA_VERSION == 1
        assert doc["tool"] == "simlint"
        for item in doc["findings"]:
            assert set(item) == {"path", "line", "col", "rule", "message"}
            assert isinstance(item["line"], int) and item["line"] >= 1
        assert doc["summary"]["findings"] == len(findings) == 2
        assert doc["summary"]["files_checked"] == 1
        assert doc["summary"]["by_rule"] == {"SL01": 1, "SL02": 1}

    def test_json_round_trips(self):
        doc = to_json_dict(self._findings(), files_checked=1)
        assert json.loads(json.dumps(doc)) == doc

    def test_text_report_format(self):
        findings = self._findings()
        text = render_text(findings, files_checked=1)
        first = findings[0]
        assert f"{first.path}:{first.line}:{first.col}: {first.rule}" in text
        assert "2 finding(s) in 1 file" in text

    def test_text_report_clean(self):
        assert "clean" in render_text([], files_checked=3)

    def test_findings_sorted_by_location(self):
        findings = self._findings()
        assert findings == sorted(findings, key=lambda f: f.sort_key())


# ---------------------------------------------------------------------------
# CLI contract
# ---------------------------------------------------------------------------

class TestCLI:
    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        f = tmp_path / "repro" / "core" / "clean.py"
        f.parent.mkdir(parents=True)
        f.write_text("X = 1\n")
        assert lint_main([str(f)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        f = tmp_path / "repro" / "core" / "bad.py"
        f.parent.mkdir(parents=True)
        f.write_text("import time\nT = time.time()\n")
        assert lint_main([str(f)]) == 1
        assert "SL02" in capsys.readouterr().out

    def test_exit_two_on_missing_path(self, capsys):
        assert lint_main(["definitely/not/a/path.py"]) == 2

    def test_exit_two_on_unknown_rule(self, capsys):
        assert lint_main(["--select", "SL99", "src/repro/lint"]) == 2

    def test_json_out_artifact(self, tmp_path, capsys):
        f = tmp_path / "repro" / "core" / "bad.py"
        f.parent.mkdir(parents=True)
        f.write_text("import time\nT = time.time()\n")
        out = tmp_path / "report.json"
        assert lint_main([str(f), "--json-out", str(out)]) == 1
        doc = json.loads(out.read_text())
        assert doc["schema"] == JSON_SCHEMA_VERSION
        assert doc["summary"]["by_rule"] == {"SL02": 1}

    def test_list_rules_covers_catalog(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SL00", "SL01", "SL02", "SL03", "SL04", "SL05"):
            assert rule_id in out

    def test_select_limits_rules(self, tmp_path, capsys):
        f = tmp_path / "repro" / "core" / "bad.py"
        f.parent.mkdir(parents=True)
        f.write_text("import time\nT = time.time()\n\ndef f(x=[]):\n    return x\n")
        assert lint_main([str(f), "--select", "SL05"]) == 1
        out = capsys.readouterr().out
        assert "SL05" in out and "SL02" not in out


# ---------------------------------------------------------------------------
# Configuration & plumbing
# ---------------------------------------------------------------------------

class TestConfig:
    def test_path_matches_is_boundary_anchored(self):
        assert path_matches("src/repro/cache/lru.py", "repro/cache")
        assert not path_matches("src/repro/cache2/lru.py", "repro/cache")
        assert path_matches("repro/cache/lru.py", "repro/cache/lru.py")

    def test_pyproject_overrides_are_loaded(self):
        config = load_config(REPO_ROOT)
        assert config.paths == ("src/repro",)
        assert "repro/press" in config.rule_paths["SL01"]
        assert config.allow_paths["SL02"] == ("repro/sim/rng.py",)

    def test_rule_catalog_lists_every_rule(self):
        ids = [rule_id for rule_id, _doc in rule_catalog()]
        assert ids == ["SL00", "SL01", "SL02", "SL03", "SL04", "SL05"]

    def test_iter_python_files_deduplicates(self, tmp_path):
        f = tmp_path / "a.py"
        f.write_text("X = 1\n")
        files = iter_python_files([str(tmp_path), str(f)])
        assert files == [f]


# ---------------------------------------------------------------------------
# Self-hosting: the repository obeys its own rules
# ---------------------------------------------------------------------------

class TestSelfHost:
    def test_src_repro_is_clean(self, capsys):
        assert lint_main([str(REPO_ROOT / "src" / "repro")]) == 0
        assert "clean" in capsys.readouterr().out
