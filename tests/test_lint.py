"""Tests for the simlint static-analysis suite (src/repro/lint).

Each per-file rule gets paired good/bad fixtures, the pragma contract
(disable / ordered / SL00 hygiene) is exercised directly, and the JSON
report shape is pinned.  The v2 whole-program layer is covered by
small synthetic projects written to a tmp dir: cross-module taint
(SL06, including the seeded set-ordering regression fixture), units
flow (SL07), suppression staleness (SL08), and cross-process mutation
(SL09).  The final test self-hosts the linter over the full configured
path set — the repository must stay clean under its own rules, with
the staleness audit engaged.
"""

import dataclasses
import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    JSON_SCHEMA_VERSION,
    LintConfig,
    TaintStep,
    all_project_rules,
    all_rules,
    findings_from_json,
    lint_paths,
    lint_source,
    rule_catalog,
    to_json_dict,
)
from repro.lint.__main__ import main as lint_main
from repro.lint.config import load_config, path_matches
from repro.lint.docs import RULE_DOCS
from repro.lint.engine import Finding, iter_python_files
from repro.lint.report import render_text

REPO_ROOT = Path(__file__).resolve().parent.parent

ALL_RULE_IDS = [f"SL0{i}" for i in range(10)]

# A path inside every default rule scope.
CORE = "src/repro/core/example.py"


def run(source, path=CORE, config=None, select=None):
    """Lint a source snippet; returns the list of findings."""
    rules = all_rules()
    if select:
        rules = [r for r in rules if r.id in select]
    return lint_source(path, textwrap.dedent(source), config or LintConfig(),
                       rules)


def run_project(tmp_path, monkeypatch, files, *, paths=("src/repro",),
                rules=(), select=None, full_run=False, config=None):
    """Materialise ``files`` as a tmp project and lint it whole-program.

    ``select`` limits the project rules; ``rules`` are the per-file
    rules to co-run (needed by the SL08 tests so pragmas get used).
    """
    for rel, src in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src), encoding="utf-8")
    monkeypatch.chdir(tmp_path)
    project_rules = all_project_rules()
    if select is not None:
        project_rules = [r for r in project_rules if r.id in select]
    findings, _files = lint_paths(list(paths), config or LintConfig(),
                                  list(rules), project_rules,
                                  full_run=full_run)
    return findings


def rule_ids(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# SL01 — unordered iteration
# ---------------------------------------------------------------------------

class TestSL01:
    def test_set_literal_iteration_flagged(self):
        findings = run("""
            for x in {1, 2, 3}:
                print(x)
        """)
        assert rule_ids(findings) == ["SL01"]

    def test_dict_view_iteration_flagged(self):
        findings = run("""
            def f(d):
                for k, v in d.items():
                    yield k
        """)
        assert rule_ids(findings) == ["SL01"]

    def test_set_call_iteration_flagged(self):
        findings = run("""
            def f(xs):
                return [x for x in set(xs)]
        """)
        assert rule_ids(findings) == ["SL01"]

    def test_sorted_wrapper_clean(self):
        findings = run("""
            def f(d):
                for k in sorted(d.keys()):
                    yield k
                return [v for v in sorted(set(d))]
        """)
        assert findings == []

    def test_transparent_wrapper_still_flagged(self):
        findings = run("""
            def f(d):
                for i, kv in enumerate(d.items()):
                    yield i
        """)
        assert rule_ids(findings) == ["SL01"]

    def test_order_sensitive_consumer_flagged(self):
        findings = run("""
            def f(d):
                return list(d.values())
        """)
        assert rule_ids(findings) == ["SL01"]

    def test_order_insensitive_consumers_clean(self):
        findings = run("""
            def f(d):
                return max(d.values()), len(d), any(d.values())
        """)
        assert findings == []

    def test_ordered_pragma_accepted(self):
        findings = run("""
            def f(d):
                # simlint: ordered -- inserts are event-ordered.
                for k in d.keys():
                    yield k
        """)
        assert findings == []

    def test_out_of_scope_path_clean(self):
        findings = run("""
            for x in {1, 2}:
                print(x)
        """, path="src/repro/experiments/report.py")
        assert findings == []


# ---------------------------------------------------------------------------
# SL02 — wall clock / ambient randomness
# ---------------------------------------------------------------------------

class TestSL02:
    def test_wall_clock_flagged(self):
        findings = run("""
            import time
            t = time.time()
        """)
        assert rule_ids(findings) == ["SL02"]

    def test_datetime_now_flagged(self):
        findings = run("""
            from datetime import datetime
            t = datetime.now()
        """)
        assert rule_ids(findings) == ["SL02"]

    def test_bare_random_flagged(self):
        findings = run("""
            import random
            x = random.random()
        """)
        assert rule_ids(findings) == ["SL02"]

    def test_unseeded_default_rng_flagged(self):
        findings = run("""
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert rule_ids(findings) == ["SL02"]

    def test_seeded_default_rng_clean(self):
        findings = run("""
            import numpy as np
            rng = np.random.default_rng(42)
        """)
        assert findings == []

    def test_monotonic_flagged(self):
        findings = run("""
            import time
            t = time.monotonic()
        """)
        assert rule_ids(findings) == ["SL02"]

    def test_allow_entry_exempts_a_file(self):
        # There is no built-in exemption any more (SL08 flags stale allow
        # entries); an explicit [tool.simlint.allow] entry is the knob.
        config = dataclasses.replace(
            LintConfig(), allow_paths={"SL02": ("repro/sim/rng.py",)})
        findings = run("""
            import random
            x = random.random()
        """, path="src/repro/sim/rng.py", config=config)
        assert findings == []


# ---------------------------------------------------------------------------
# SL03 — float equality on time / byte quantities
# ---------------------------------------------------------------------------

class TestSL03:
    def test_time_equality_flagged(self):
        findings = run("""
            def f(now, deadline):
                return now == deadline
        """)
        assert rule_ids(findings) == ["SL03"]

    def test_kb_inequality_flagged(self):
        findings = run("""
            def f(used_kb):
                return used_kb != 0.0
        """)
        assert rule_ids(findings) == ["SL03"]

    def test_attribute_quantity_flagged(self):
        findings = run("""
            def f(self, other):
                return self.size_kb == other.size_kb
        """)
        assert rule_ids(findings) == ["SL03"]

    def test_non_quantity_names_clean(self):
        findings = run("""
            def f(policy, node_id):
                return policy == "kmc" and node_id == 3
        """)
        assert findings == []

    def test_ordering_comparisons_clean(self):
        findings = run("""
            def f(now, deadline):
                return now < deadline or now >= deadline
        """)
        assert findings == []

    def test_disable_pragma_with_reason(self):
        findings = run("""
            def f(age, current):
                # simlint: disable=SL03 -- same stored float, not arithmetic.
                return current == age
        """)
        assert findings == []


# ---------------------------------------------------------------------------
# SL04 — cache-internal reach-ins
# ---------------------------------------------------------------------------

class TestSL04:
    def test_reach_in_flagged(self):
        findings = run("""
            def flush(cache):
                return [blk for blk in cache._dirty]
        """)
        # _dirty iteration is a reach-in; the dict-as-set itself is
        # insertion-ordered so SL01 stays quiet.
        assert "SL04" in rule_ids(findings)

    def test_self_access_in_owner_file_clean(self):
        findings = run("""
            class BlockCache:
                def purge(self):
                    self._dirty.clear()
        """, path="src/repro/cache/blockcache.py")
        assert findings == []

    def test_self_access_outside_owner_clean(self):
        # `self._dirty` in a non-owner file is that class's own attribute,
        # not a reach into BlockCache.
        findings = run("""
            class Other:
                def reset(self):
                    self._dirty = {}
        """)
        assert findings == []


# ---------------------------------------------------------------------------
# SL05 — mutable default arguments
# ---------------------------------------------------------------------------

class TestSL05:
    @pytest.mark.parametrize("default", ["[]", "{}", "set()", "dict()",
                                         "list()", "bytearray()"])
    def test_mutable_default_flagged(self, default):
        findings = run(f"""
            def f(x={default}):
                return x
        """)
        assert rule_ids(findings) == ["SL05"]

    def test_defaultdict_default_flagged(self):
        findings = run("""
            import collections
            def f(x=collections.defaultdict(list)):
                return x
        """)
        assert rule_ids(findings) == ["SL05"]

    def test_immutable_defaults_clean(self):
        findings = run("""
            def f(a=(), b=None, c=0, d="x", e=frozenset()):
                return a, b, c, d, e
        """)
        assert findings == []

    def test_lambda_default_flagged(self):
        findings = run("""
            g = lambda x=[]: x
        """)
        assert rule_ids(findings) == ["SL05"]


# ---------------------------------------------------------------------------
# SL00 — suppression hygiene, pragma placement
# ---------------------------------------------------------------------------

class TestPragmas:
    def test_unjustified_disable_is_a_finding_and_does_not_suppress(self):
        findings = run("""
            import time
            t = time.time()  # simlint: disable=SL02
        """)
        assert sorted(rule_ids(findings)) == ["SL00", "SL02"]

    def test_malformed_disable_flagged(self):
        findings = run("""
            x = 1  # simlint: disable= -- empty rule list
        """)
        assert rule_ids(findings) == ["SL00"]

    def test_unknown_pragma_flagged(self):
        findings = run("""
            x = 1  # simlint: frobnicate -- not a directive
        """)
        assert rule_ids(findings) == ["SL00"]

    def test_own_line_pragma_governs_next_code_line(self):
        findings = run("""
            import time
            # simlint: disable=SL02 -- fixture exercising pragma placement.
            t = time.time()
        """)
        assert findings == []

    def test_trailing_pragma_governs_its_line(self):
        findings = run("""
            import time
            t = time.time()  # simlint: disable=SL02 -- fixture.
        """)
        assert findings == []

    def test_disable_does_not_leak_to_other_lines(self):
        findings = run("""
            import time
            t = time.time()  # simlint: disable=SL02 -- only this line.
            u = time.time()
        """)
        assert rule_ids(findings) == ["SL02"]

    def test_syntax_error_reported_as_sl00(self):
        findings = run("def broken(:\n")
        assert rule_ids(findings) == ["SL00"]

    def test_null_bytes_reported_as_sl00(self):
        findings = run("x = 1\x00\n")
        assert rule_ids(findings) == ["SL00"]


# ---------------------------------------------------------------------------
# SL06 — interprocedural nondeterminism taint
# ---------------------------------------------------------------------------

# The seeded regression fixture from the determinism post-mortem: an
# unordered set is born in one module and materialised into simulation
# state in another.  `sorted()` at the consumption site is the fix.
_TOPO = """
    def node_ids(nodes):
        return {n for n in nodes}
"""

_SCHED_BAD = """
    from repro.cluster.topo import node_ids

    class Scheduler:
        def __init__(self, nodes):
            self.order = list(node_ids(nodes))
"""

_SCHED_GOOD = """
    from repro.cluster.topo import node_ids

    class Scheduler:
        def __init__(self, nodes):
            self.order = sorted(node_ids(nodes))
"""


class TestSL06:
    def _bad_findings(self, tmp_path, monkeypatch):
        return run_project(tmp_path, monkeypatch, {
            "src/repro/cluster/topo.py": _TOPO,
            "src/repro/sim/sched.py": _SCHED_BAD,
        }, select={"SL06"})

    def test_cross_module_set_order_flagged_with_path(self, tmp_path,
                                                      monkeypatch):
        findings = self._bad_findings(tmp_path, monkeypatch)
        assert rule_ids(findings) == ["SL06"]
        f = findings[0]
        assert f.path == "src/repro/sim/sched.py"
        assert "hash-order-dependent" in f.message
        assert "src/repro/cluster/topo.py" in f.message
        # The witness path crosses the module boundary: it starts at the
        # set birth in topo.py and ends at the state store in sched.py.
        assert len(f.trace) >= 2
        assert f.trace[0].path == "src/repro/cluster/topo.py"
        assert any(s.path == "src/repro/sim/sched.py" for s in f.trace)

    def test_sorted_at_consumption_site_is_clean(self, tmp_path, monkeypatch):
        findings = run_project(tmp_path, monkeypatch, {
            "src/repro/cluster/topo.py": _TOPO,
            "src/repro/sim/sched.py": _SCHED_GOOD,
        }, select={"SL06"})
        assert findings == []

    def test_environ_read_into_state_flagged(self, tmp_path, monkeypatch):
        findings = run_project(tmp_path, monkeypatch, {
            "src/repro/sim/cfg.py": """
                import os

                class Cfg:
                    def __init__(self):
                        self.mode = os.environ.get("MODE", "x")
            """,
        }, select={"SL06"})
        assert rule_ids(findings) == ["SL06"]
        assert "environment-derived" in findings[0].message

    def test_sanctioned_env_prefix_is_clean(self, tmp_path, monkeypatch):
        findings = run_project(tmp_path, monkeypatch, {
            "src/repro/sim/cfg.py": """
                import os

                class Cfg:
                    def __init__(self):
                        self.mode = os.environ.get("REPRO_MODE", "x")
            """,
        }, select={"SL06"})
        assert findings == []

    def test_env_helper_judged_by_caller_literals(self, tmp_path, monkeypatch):
        # A helper reading os.environ[name] is clean when every caller
        # passes a sanctioned literal key — and tainted when one doesn't.
        helper = """
            import os

            def knob(name, default):
                raw = os.environ.get(name)
                return raw if raw is not None else default

            class Cfg:
                def __init__(self):
                    self.scale = knob({key!r}, "1")
        """
        clean = run_project(tmp_path, monkeypatch, {
            "src/repro/sim/cfg.py": textwrap.dedent(helper).format(
                key="REPRO_SCALE"),
        }, select={"SL06"})
        assert clean == []
        tainted = run_project(tmp_path, monkeypatch, {
            "src/repro/sim/cfg.py": textwrap.dedent(helper).format(
                key="SCALE"),
        }, select={"SL06"})
        assert rule_ids(tainted) == ["SL06"]

    def test_findings_round_trip_through_schema2_json(self, tmp_path,
                                                      monkeypatch):
        findings = self._bad_findings(tmp_path, monkeypatch)
        doc = json.loads(json.dumps(to_json_dict(findings, files_checked=2)))
        assert doc["schema"] == JSON_SCHEMA_VERSION == 2
        rehydrated = findings_from_json(doc)
        assert rehydrated == findings
        assert rehydrated[0].trace == findings[0].trace

    def test_wrong_schema_version_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            findings_from_json({"schema": 1, "findings": []})


# ---------------------------------------------------------------------------
# SL07 — units flow from naming conventions
# ---------------------------------------------------------------------------

class TestSL07:
    def _run(self, tmp_path, monkeypatch, source):
        return run_project(tmp_path, monkeypatch, {
            "src/repro/core/units.py": source,
        }, select={"SL07"})

    def test_mixed_unit_arithmetic_flagged(self, tmp_path, monkeypatch):
        findings = self._run(tmp_path, monkeypatch, """
            def f(timeout_ms, delay_s):
                return timeout_ms + delay_s
        """)
        assert rule_ids(findings) == ["SL07"]
        assert "[ms]" in findings[0].message and "[s]" in findings[0].message

    def test_mixed_unit_comparison_flagged(self, tmp_path, monkeypatch):
        findings = self._run(tmp_path, monkeypatch, """
            def f(size_bytes, quota_kb):
                return size_bytes > quota_kb
        """)
        assert rule_ids(findings) == ["SL07"]

    def test_mixed_unit_assignment_flagged(self, tmp_path, monkeypatch):
        findings = self._run(tmp_path, monkeypatch, """
            def f(delay_s):
                wait_ms = delay_s
                return wait_ms
        """)
        assert rule_ids(findings) == ["SL07"]

    def test_multiplication_is_an_explicit_conversion(self, tmp_path,
                                                      monkeypatch):
        findings = self._run(tmp_path, monkeypatch, """
            def f(delay_s):
                delay_ms = delay_s * 1000.0
                return delay_ms
        """)
        assert findings == []

    def test_keyword_argument_unit_mismatch_flagged(self, tmp_path,
                                                    monkeypatch):
        findings = self._run(tmp_path, monkeypatch, """
            def wait(timeout_ms):
                return timeout_ms

            def g(delay_s):
                return wait(timeout_ms=delay_s)
        """)
        assert rule_ids(findings) == ["SL07"]
        assert "timeout_ms=" in findings[0].message

    def test_positional_argument_resolved_through_callee(self, tmp_path,
                                                         monkeypatch):
        findings = self._run(tmp_path, monkeypatch, """
            def wait(timeout_ms):
                return timeout_ms

            def g(delay_s):
                return wait(delay_s)
        """)
        assert rule_ids(findings) == ["SL07"]
        assert "parameter timeout_ms" in findings[0].message

    def test_converter_named_call_resets_unit(self, tmp_path, monkeypatch):
        findings = self._run(tmp_path, monkeypatch, """
            def blocks_for_mb(size_mb):
                return int(size_mb * 256)

            def f(size_mb):
                blocks = blocks_for_mb(size_mb)
                return blocks
        """)
        assert findings == []

    def test_same_unit_everywhere_clean(self, tmp_path, monkeypatch):
        findings = self._run(tmp_path, monkeypatch, """
            def f(read_ms, write_ms):
                total_ms = read_ms + write_ms
                return total_ms > read_ms
        """)
        assert findings == []

    def test_per_s_wins_over_bare_s_suffix(self, tmp_path, monkeypatch):
        findings = self._run(tmp_path, monkeypatch, """
            def f(rate_per_s, other_rps):
                return rate_per_s + other_rps
        """)
        assert findings == []


# ---------------------------------------------------------------------------
# SL08 — stale suppressions
# ---------------------------------------------------------------------------

class TestSL08:
    def test_stale_pragma_flagged_on_full_run(self, tmp_path, monkeypatch):
        findings = run_project(tmp_path, monkeypatch, {
            "src/repro/core/x.py": """
                X = 1  # simlint: disable=SL02 -- obsolete: the clock read moved.
            """,
        }, rules=all_rules(), full_run=True)
        assert rule_ids(findings) == ["SL08"]
        assert "stale suppression" in findings[0].message

    def test_live_pragma_not_flagged(self, tmp_path, monkeypatch):
        findings = run_project(tmp_path, monkeypatch, {
            "src/repro/core/x.py": """
                import time
                T = time.time()  # simlint: disable=SL02 -- fixture: pragma is live.
            """,
        }, rules=all_rules(), full_run=True, select={"SL08"})
        assert findings == []

    def test_partial_runs_do_not_audit(self, tmp_path, monkeypatch):
        findings = run_project(tmp_path, monkeypatch, {
            "src/repro/core/x.py": """
                X = 1  # simlint: disable=SL02 -- obsolete: nothing here.
            """,
        }, rules=all_rules(), full_run=False)
        assert findings == []

    def test_stale_allow_entry_flagged(self, tmp_path, monkeypatch):
        config = dataclasses.replace(
            LintConfig(), allow_paths={"SL02": ("repro/ghost.py",)})
        findings = run_project(tmp_path, monkeypatch, {
            "src/repro/core/x.py": "X = 1\n",
        }, rules=all_rules(), full_run=True, config=config)
        assert rule_ids(findings) == ["SL08"]
        assert findings[0].path == "pyproject.toml"
        assert "stale allow entry" in findings[0].message

    def test_live_allow_entry_not_flagged(self, tmp_path, monkeypatch):
        config = dataclasses.replace(
            LintConfig(), allow_paths={"SL02": ("repro/core/x.py",)})
        findings = run_project(tmp_path, monkeypatch, {
            "src/repro/core/x.py": """
                import time
                T = time.time()
            """,
        }, rules=all_rules(), full_run=True, config=config, select={"SL08"})
        # The allow entry suppressed the SL02 finding, so it is live.
        assert findings == []


# ---------------------------------------------------------------------------
# SL09 — cross-process mutation after pool creation
# ---------------------------------------------------------------------------

_SWEEP_BAD = """
    from multiprocessing import Pool

    TABLE = {}

    def worker(x):
        return TABLE.get(x, 0)

    def sweep(items):
        pool = Pool(4)
        TABLE["k"] = 1
        return pool.map(worker, items)
"""

_SWEEP_GOOD = """
    from multiprocessing import Pool

    TABLE = {}

    def worker(x):
        return TABLE.get(x, 0)

    def sweep(items):
        TABLE["k"] = 1
        pool = Pool(4)
        return pool.map(worker, items)
"""


class TestSL09:
    def test_mutation_after_pool_creation_flagged(self, tmp_path, monkeypatch):
        findings = run_project(tmp_path, monkeypatch, {
            "src/repro/experiments/sweep.py": _SWEEP_BAD,
        }, select={"SL09"})
        assert rule_ids(findings) == ["SL09"]
        f = findings[0]
        assert "TABLE" in f.message and "worker" in f.message
        assert "after the pool is created" in f.message

    def test_mutation_before_pool_creation_clean(self, tmp_path, monkeypatch):
        findings = run_project(tmp_path, monkeypatch, {
            "src/repro/experiments/sweep.py": _SWEEP_GOOD,
        }, select={"SL09"})
        assert findings == []

    def test_local_shadowing_global_not_flagged(self, tmp_path, monkeypatch):
        findings = run_project(tmp_path, monkeypatch, {
            "src/repro/experiments/sweep.py": """
                from multiprocessing import Pool

                TABLE = {}

                def worker(x):
                    return TABLE.get(x, 0)

                def sweep(items):
                    pool = Pool(4)
                    TABLE2 = {}
                    TABLE2["k"] = 1
                    return pool.map(worker, items)
            """,
        }, select={"SL09"})
        assert findings == []


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

class TestReports:
    def _findings(self):
        return run("""
            import time
            t = time.time()
            for x in {1, 2}:
                print(x)
        """)

    def test_json_document_shape(self):
        findings = self._findings()
        doc = to_json_dict(findings, files_checked=1)
        assert set(doc) == {"schema", "tool", "findings", "summary"}
        assert doc["schema"] == JSON_SCHEMA_VERSION == 2
        assert doc["tool"] == "simlint"
        for item in doc["findings"]:
            assert set(item) == {"path", "line", "col", "rule", "message",
                                 "trace"}
            assert isinstance(item["line"], int) and item["line"] >= 1
            assert item["trace"] == []  # per-file findings carry no trace
        assert doc["summary"]["findings"] == len(findings) == 2
        assert doc["summary"]["files_checked"] == 1
        assert doc["summary"]["by_rule"] == {"SL01": 1, "SL02": 1}

    def test_json_round_trips(self):
        doc = to_json_dict(self._findings(), files_checked=1)
        assert json.loads(json.dumps(doc)) == doc
        assert findings_from_json(doc) == self._findings()

    def test_text_report_format(self):
        findings = self._findings()
        text = render_text(findings, files_checked=1)
        first = findings[0]
        assert f"{first.path}:{first.line}:{first.col}: {first.rule}" in text
        assert "2 finding(s) in 1 file" in text

    def test_text_report_renders_witness_path(self):
        f = Finding("src/repro/sim/x.py", 3, 1, "SL06", "tainted flow",
                    trace=(TaintStep("src/repro/a.py", 1, "set birth"),
                           TaintStep("src/repro/sim/x.py", 3, "state store")))
        text = render_text([f], files_checked=1)
        assert "├─" in text and "└─" in text
        assert "set birth" in text and "state store" in text

    def test_text_report_clean(self):
        assert "clean" in render_text([], files_checked=3)

    def test_findings_sorted_by_location(self):
        findings = self._findings()
        assert findings == sorted(findings, key=lambda f: f.sort_key())


# ---------------------------------------------------------------------------
# CLI contract
# ---------------------------------------------------------------------------

class TestCLI:
    def test_exit_zero_on_clean_file(self, tmp_path, capsys):
        f = tmp_path / "repro" / "core" / "clean.py"
        f.parent.mkdir(parents=True)
        f.write_text("X = 1\n")
        assert lint_main([str(f)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_findings(self, tmp_path, capsys):
        f = tmp_path / "repro" / "core" / "bad.py"
        f.parent.mkdir(parents=True)
        f.write_text("import time\nT = time.time()\n")
        assert lint_main([str(f), "--select", "SL02"]) == 1
        assert "SL02" in capsys.readouterr().out

    def test_exit_two_on_missing_path(self, capsys):
        assert lint_main(["definitely/not/a/path.py"]) == 2

    def test_exit_two_on_unknown_rule(self, capsys):
        assert lint_main(["--select", "SL99", "src/repro/lint"]) == 2

    def test_json_out_artifact(self, tmp_path, capsys):
        f = tmp_path / "repro" / "core" / "bad.py"
        f.parent.mkdir(parents=True)
        f.write_text("import time\nT = time.time()\n")
        out = tmp_path / "report.json"
        assert lint_main([str(f), "--select", "SL02",
                          "--json-out", str(out)]) == 1
        doc = json.loads(out.read_text())
        assert doc["schema"] == JSON_SCHEMA_VERSION
        assert doc["summary"]["by_rule"] == {"SL02": 1}

    def test_list_rules_covers_catalog(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out

    def test_select_limits_rules(self, tmp_path, capsys):
        f = tmp_path / "repro" / "core" / "bad.py"
        f.parent.mkdir(parents=True)
        f.write_text("import time\nT = time.time()\n\ndef f(x=[]):\n    return x\n")
        assert lint_main([str(f), "--select", "SL05"]) == 1
        out = capsys.readouterr().out
        assert "SL05" in out and "SL02" not in out

    def test_explain_prints_rule_doc(self, capsys):
        assert lint_main(["--explain", "SL06"]) == 0
        out = capsys.readouterr().out
        assert "SL06" in out and "disable=SL06" in out

    def test_explain_is_case_insensitive(self, capsys):
        assert lint_main(["--explain", "sl07"]) == 0
        assert "SL07" in capsys.readouterr().out

    def test_explain_unknown_rule_exits_two(self, capsys):
        assert lint_main(["--explain", "SL42"]) == 2


# ---------------------------------------------------------------------------
# Rule docs — one table drives --explain, --list-rules, and DESIGN.md
# ---------------------------------------------------------------------------

class TestRuleDocs:
    def test_docs_cover_every_rule(self):
        assert [d.id for d in RULE_DOCS] == ALL_RULE_IDS

    def test_every_doc_is_complete(self):
        for doc in RULE_DOCS:
            assert doc.title and doc.rationale and doc.pragma
            assert doc.good and doc.bad

    def test_rule_catalog_is_doc_table_driven(self):
        ids = [rule_id for rule_id, _doc in rule_catalog()]
        assert ids == ALL_RULE_IDS

    def test_design_and_readme_mention_every_rule(self):
        design = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for doc in RULE_DOCS:
            assert doc.id in design, f"{doc.id} missing from DESIGN.md"
            assert doc.id in readme, f"{doc.id} missing from README.md"


# ---------------------------------------------------------------------------
# Configuration & plumbing
# ---------------------------------------------------------------------------

class TestConfig:
    def test_path_matches_is_boundary_anchored(self):
        assert path_matches("src/repro/cache/lru.py", "repro/cache")
        assert not path_matches("src/repro/cache2/lru.py", "repro/cache")
        assert path_matches("repro/cache/lru.py", "repro/cache/lru.py")

    def test_pyproject_overrides_are_loaded(self):
        config = load_config(REPO_ROOT)
        assert config.paths == ("src/repro", "benchmarks")
        assert "repro/press" in config.rule_paths["SL01"]
        assert "benchmarks" in config.rule_paths["SL06"]
        # SL08 keeps the allow table honest: entries exist only while
        # they suppress something, and none are needed right now.
        assert dict(config.allow_paths) == {}

    def test_sl06_defaults_cover_the_sink_contract(self):
        config = LintConfig()
        assert "Tracer.start" in config.sl06_sinks
        assert "wrap_result" in config.sl06_sinks
        assert "repro/sim" in config.sl06_state_paths
        assert config.sl06_env_ok_prefixes == ("REPRO_",)

    def test_unit_matchers_priority_order(self):
        matchers = LintConfig().unit_matchers()
        assert matchers[0][0] == "per_s"  # must win over the bare _s suffix
        units = [u for u, _rx in matchers]
        assert units == ["per_s", "ms", "s", "bytes", "kb", "mb", "blocks"]

    def test_iter_python_files_deduplicates(self, tmp_path):
        f = tmp_path / "a.py"
        f.write_text("X = 1\n")
        files = iter_python_files([str(tmp_path), str(f)])
        assert files == [f]


# ---------------------------------------------------------------------------
# Self-hosting: the repository obeys its own rules
# ---------------------------------------------------------------------------

class TestSelfHost:
    def test_full_run_is_clean_including_staleness_audit(self, capsys,
                                                         monkeypatch):
        # No explicit paths -> the configured set (src/repro + benchmarks)
        # with all four project rules AND the SL08 staleness audit live.
        monkeypatch.chdir(REPO_ROOT)
        assert lint_main([]) == 0
        assert "clean" in capsys.readouterr().out
