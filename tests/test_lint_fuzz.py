"""Hypothesis fuzzing for simlint: the linter never crashes and its
reports are deterministic.

Three properties, over two corpora:

* generated modules — small programs composed from statement templates
  biased toward the constructs the rules care about (sets, clocks,
  environ reads, pools, unit-suffixed names, pragmas) — lint cleanly in
  the sense that the linter returns findings rather than raising, and
  linting twice yields the identical report (fresh rule instances each
  time, so rule state cannot leak between runs);
* arbitrary text — including non-parsing garbage and null bytes — is
  reported as SL00, never an exception;
* the real repository corpus (every file under the configured lint
  paths) is linted twice per file with identical results.

The whole-program layer gets the same treatment: synthetic two-module
projects are linted twice through ``lint_paths`` with all project rules
and the staleness audit live.
"""

import os
import tempfile
import textwrap
from pathlib import Path

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.lint import (  # noqa: E402
    LintConfig,
    all_project_rules,
    all_rules,
    lint_paths,
    lint_source,
)
from repro.lint.engine import iter_python_files  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent

# ---------------------------------------------------------------------------
# Generated-module strategy
# ---------------------------------------------------------------------------

_NAMES = st.sampled_from([
    "x", "data", "timeout_ms", "delay_s", "size_bytes", "total_kb",
    "rate_per_s", "nodes", "d", "TABLE",
])

_EXPRS = st.sampled_from([
    "0", "1.5", "'k'", "None", "{1, 2}", "[1, 2]", "{'a': 1}",
    "set(d)", "sorted(d)", "list(d.keys())", "d.items()",
    "time.time()", "random.random()", "random.Random(7)",
    "os.environ.get('REPRO_X')", "os.environ['HOME']",
    "timeout_ms + delay_s", "f0(x)", "x == 1.0", "node_ids(nodes)",
])

_HEADER = "import os\nimport random\nimport time\n"


@st.composite
def _statement(draw):
    kind = draw(st.integers(0, 6))
    n, e = draw(_NAMES), draw(_EXPRS)
    i = draw(st.integers(0, 3))
    if kind == 0:
        return f"{n} = {e}"
    if kind == 1:
        return f"def f{i}({n}=None):\n    return {e}"
    if kind == 2:
        return f"for {n} in {e}:\n    {n}2 = {e}"
    if kind == 3:
        return (f"class C{i}:\n    def m(self, {n}):\n"
                f"        self.{n} = {e}")
    if kind == 4:
        return f"if {n} == {e}:\n    pass"
    if kind == 5:
        rule = draw(st.integers(0, 9))
        return (f"# simlint: disable=SL0{rule} -- fuzz fixture\n"
                f"{n} = {e}")
    return f"with Pool(2) as pool:\n    pool.map(f{i}, {e})"


def _module(stmts):
    return _HEADER + "\n\n" + "\n\n".join(stmts) + "\n"


_MODULES = st.lists(_statement(), min_size=1, max_size=8).map(_module)


# ---------------------------------------------------------------------------
# Per-file layer
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(_MODULES)
def test_generated_modules_never_crash_and_lint_idempotently(src):
    cfg = LintConfig()
    first = lint_source("src/repro/core/fuzz.py", src, cfg, all_rules())
    second = lint_source("src/repro/core/fuzz.py", src, cfg, all_rules())
    assert first == second
    for f in first:
        assert f.rule.startswith("SL") and f.line >= 1


@settings(max_examples=60, deadline=None)
@given(st.text(max_size=200))
def test_arbitrary_text_never_crashes(src):
    findings = lint_source("src/repro/core/fuzz.py", src, LintConfig(),
                           all_rules())
    # Unparsable input is a finding (SL00), never an exception.
    for f in findings:
        assert f.rule.startswith("SL")


# ---------------------------------------------------------------------------
# Whole-program layer
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_statement(), min_size=1, max_size=5),
       st.lists(_statement(), min_size=1, max_size=5))
def test_project_rules_never_crash_and_are_idempotent(stmts_a, stmts_b):
    cfg = LintConfig()
    with tempfile.TemporaryDirectory() as td:
        root = Path(td)
        for rel, stmts in (("src/repro/experiments/fa.py", stmts_a),
                           ("src/repro/sim/fb.py", stmts_b)):
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(_module(stmts), encoding="utf-8")
        old = os.getcwd()
        os.chdir(td)
        try:
            runs = [lint_paths(["src/repro"], cfg, list(all_rules()),
                               all_project_rules(), full_run=True)
                    for _ in range(2)]
        finally:
            os.chdir(old)
    assert runs[0] == runs[1]


# ---------------------------------------------------------------------------
# Real repository corpus
# ---------------------------------------------------------------------------

_CORPUS = iter_python_files([str(REPO_ROOT / "src" / "repro"),
                             str(REPO_ROOT / "benchmarks")])


@pytest.mark.parametrize(
    "path", _CORPUS,
    ids=[p.relative_to(REPO_ROOT).as_posix() for p in _CORPUS])
def test_repo_corpus_lints_deterministically(path):
    rel = path.relative_to(REPO_ROOT).as_posix()
    src = path.read_text(encoding="utf-8")
    cfg = LintConfig()
    first = lint_source(rel, src, cfg, all_rules())
    second = lint_source(rel, src, cfg, all_rules())
    assert first == second
