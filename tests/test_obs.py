"""Unit tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.cache.block import BlockId
from repro.cache.blockcache import BlockCache
from repro.obs import (
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    InvariantSampler,
    MetricsRegistry,
    NULL_SPAN,
    NULL_TRACER,
    Observability,
    Tracer,
)
from repro.sim.engine import Simulator


class TestCounter:
    def test_incr(self):
        c = Counter("x")
        assert c.value == 0
        c.incr()
        c.incr(4)
        assert c.value == 5

    def test_never_decreases(self):
        with pytest.raises(ValueError):
            Counter("x").incr(-1)


class TestGauge:
    def test_explicit(self):
        g = Gauge("x")
        assert g.value == 0.0
        g.set(3.5)
        assert g.value == 3.5

    def test_callback_backed(self):
        box = [1.0]
        g = Gauge("x", fn=lambda: box[0])
        assert g.value == 1.0
        box[0] = 9.0
        assert g.value == 9.0

    def test_callback_gauge_rejects_set(self):
        g = Gauge("x", fn=lambda: 0.0)
        with pytest.raises(ValueError):
            g.set(1.0)


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("x", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 99.0, 1e6):
            h.observe(v)
        # le_1 gets 0.5 and 1.0 (bounds are inclusive upper edges).
        assert h.counts == [2.0, 1.0, 1.0, 1.0]
        assert h.count == 5

    def test_weighted_mean(self):
        h = Histogram("x", bounds=(10.0,))
        h.observe(2.0, weight=3.0)   # e.g. queue length 2 held for 3 ms
        h.observe(4.0, weight=1.0)
        assert h.mean == pytest.approx(10.0 / 4.0)
        assert h.weight == 4.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x").observe(1.0, weight=-1.0)

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("x", bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("x", bounds=())

    def test_snapshot_has_overflow(self):
        h = Histogram("x", bounds=(1.0,))
        h.observe(50.0)
        snap = h.snapshot()
        assert snap["buckets"] == {"le_1": 0.0, "le_inf": 1.0}
        assert snap["sum"] == 50.0

    def test_default_buckets(self):
        h = Histogram("x")
        assert h.bounds == DEFAULT_BUCKETS_MS

    def test_percentiles_in_snapshot(self):
        h = Histogram("x")
        for v in range(1, 1001):
            h.observe(float(v))
        snap = h.snapshot()
        # Reservoir capacity exceeds 1000, so these are near-exact.
        assert snap["p50"] == pytest.approx(500.0, rel=0.02)
        assert snap["p95"] == pytest.approx(950.0, rel=0.02)
        assert snap["p99"] == pytest.approx(990.0, rel=0.02)
        assert snap["p50"] == h.quantile(0.5)

    def test_percentiles_empty(self):
        snap = Histogram("x").snapshot()
        assert snap["p50"] == snap["p95"] == snap["p99"] == 0.0

    def test_percentiles_deterministic(self):
        def build():
            h = Histogram("x")
            for v in range(10_000):
                h.observe((v * 7919) % 1000 / 3.0)
            return h.snapshot()

        assert build() == build()


class TestMetricsRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")

    def test_collector_merged_at_snapshot(self):
        r = MetricsRegistry()
        state = {"hits": 1}
        r.register_collector("comp", lambda: dict(state))
        state["hits"] = 7  # collectors are read lazily
        assert r.snapshot()["collected"]["comp"] == {"hits": 7}

    def test_duplicate_collector_rejected(self):
        r = MetricsRegistry()
        r.register_collector("comp", dict)
        with pytest.raises(ValueError):
            r.register_collector("comp", dict)

    def test_json_deterministic(self):
        r = MetricsRegistry()
        r.counter("b").incr()
        r.counter("a").incr(2)
        r.gauge("z").set(1.5)
        r.histogram("h", bounds=(1.0,)).observe(0.5)
        one = r.to_json()
        two = r.to_json()
        assert one == two
        data = json.loads(one)
        assert data["counters"] == {"a": 2, "b": 1}

    def test_dump(self, tmp_path):
        r = MetricsRegistry()
        r.counter("a").incr()
        path = tmp_path / "m.json"
        r.dump(path)
        assert json.loads(path.read_text())["counters"] == {"a": 1}


class TestTracer:
    def test_parent_child_same_trace(self):
        t = Tracer()
        root = t.start("request", node=0)
        child = t.start("peer_fetch", parent=root, node=0)
        assert child.trace_id == root.trace_id == root.span_id
        assert child.parent_id == root.span_id
        child.finish()
        root.finish()
        # Emission order is finish order: inner spans close first.
        assert [r["name"] for r in t.records] == ["peer_fetch", "request"]

    def test_null_span_parent_starts_new_trace(self):
        t = Tracer()
        s = t.start("forward", parent=NULL_SPAN)
        assert s.parent_id is None
        assert s.trace_id == s.span_id

    def test_simulated_clock(self):
        sim = Simulator()
        t = Tracer()
        t.attach(sim)

        def proc():
            span = t.start("work")
            yield sim.timeout(5.0)
            span.finish()

        sim.process(proc())
        sim.run()
        rec = t.records[0]
        assert rec["start"] == 0.0 and rec["end"] == 5.0

    def test_double_finish_raises(self):
        t = Tracer()
        s = t.start("x")
        s.finish()
        with pytest.raises(RuntimeError):
            s.finish()

    def test_point_is_zero_duration(self):
        t = Tracer()
        p = t.point("evict", node=2, master=False)
        assert p.start == p.end
        assert t.records[0]["attrs"] == {"master": False}

    def test_jsonl_and_digest_deterministic(self):
        def build():
            t = Tracer()
            root = t.start("request", node=1, file=9)
            t.point("probe", parent=root, n=3)
            root.finish(cls="local")
            return t

        a, b = build(), build()
        assert a.to_jsonl() == b.to_jsonl()
        assert a.digest() == b.digest()
        for line in a.to_jsonl().splitlines():
            rec = json.loads(line)
            assert list(rec) == sorted(rec)

    def test_dump_jsonl(self, tmp_path):
        t = Tracer()
        t.point("x")
        path = tmp_path / "t.jsonl"
        t.dump_jsonl(path)
        assert path.read_text() == t.to_jsonl()

    def test_clear(self):
        t = Tracer()
        t.point("x")
        t.clear()
        assert t.records == []

    def test_unfinished_spans_flagged_in_export(self):
        t = Tracer()
        a = t.start("outer")
        b = t.start("inner", parent=a)
        b.finish()
        assert t.open_spans == [a]
        recs = [json.loads(line) for line in t.to_jsonl().splitlines()]
        # Finished records first, then open spans flagged unfinished.
        assert [r["name"] for r in recs] == ["inner", "outer"]
        assert "unfinished" not in recs[0]
        assert recs[1]["unfinished"] is True
        assert recs[1]["end"] is None

    def test_finish_clears_unfinished_flag(self):
        t = Tracer()
        a = t.start("outer")
        a.finish()
        assert t.open_spans == []
        recs = [json.loads(line) for line in t.to_jsonl().splitlines()]
        assert len(recs) == 1 and "unfinished" not in recs[0]

    def test_clear_drops_open_spans(self):
        t = Tracer()
        t.start("dangling")
        t.clear()
        assert t.open_spans == []
        assert t.to_jsonl() == ""


class TestNullTracer:
    def test_all_noops(self):
        assert not NULL_TRACER.enabled
        span = NULL_TRACER.start("x", node=1, foo=2)
        assert span is NULL_SPAN
        span.finish()
        span.finish(extra=1)  # safe to finish repeatedly
        assert NULL_TRACER.point("y") is NULL_SPAN
        assert NULL_TRACER.records == []
        assert NULL_TRACER.to_jsonl() == ""
        NULL_TRACER.dump_jsonl("/nonexistent/never-written")  # no-op


class TestInvariantSampler:
    def _run_events(self, sim, n):
        def proc():
            for _ in range(n):
                yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()

    def test_samples_every_n(self):
        sim = Simulator()
        calls = []
        sampler = InvariantSampler(lambda: calls.append(sim.now), every=3)
        sampler.attach(sim)
        self._run_events(sim, 10)
        assert sampler.events_seen >= 10
        assert sampler.checks_run == sampler.events_seen // 3
        assert len(calls) == sampler.checks_run

    def test_failed_check_propagates(self):
        sim = Simulator()

        def bad():
            raise AssertionError("invariant broken")

        InvariantSampler(bad, every=1).attach(sim)
        sim.process(iter([sim.timeout(1.0)]))
        with pytest.raises(AssertionError, match="invariant broken"):
            sim.run()

    def test_detach_stops_sampling(self):
        sim = Simulator()
        sampler = InvariantSampler(lambda: None, every=1)
        sampler.attach(sim)
        sampler.detach()
        self._run_events(sim, 5)
        assert sampler.events_seen == 0

    def test_attach_twice_same_sim_ok(self):
        sim = Simulator()
        sampler = InvariantSampler(lambda: None, every=1)
        sampler.attach(sim)
        sampler.attach(sim)
        self._run_events(sim, 4)
        # Idempotent: the hook ran once per event, not twice.
        assert sampler.events_seen == sampler.checks_run

    def test_attach_other_sim_rejected(self):
        sampler = InvariantSampler(lambda: None)
        sampler.attach(Simulator())
        with pytest.raises(RuntimeError):
            sampler.attach(Simulator())

    def test_bad_every(self):
        with pytest.raises(ValueError):
            InvariantSampler(lambda: None, every=0)


class TestObservability:
    def test_defaults(self):
        obs = Observability()
        assert obs.tracer.enabled
        assert isinstance(obs.registry, MetricsRegistry)
        assert obs.sampler is None

    def test_trace_off_uses_null_tracer(self):
        obs = Observability(trace=False)
        assert obs.tracer is NULL_TRACER

    def test_profile_off_by_default(self):
        from repro.obs import NULL_PROFILER

        assert Observability().profiler is NULL_PROFILER

    def test_profile_implies_tracing(self):
        obs = Observability(trace=False, profile=True)
        assert obs.tracer.enabled
        assert obs.profiler.enabled
        assert obs.profiler.tracer is obs.tracer

    def test_negative_invariant_every_rejected(self):
        with pytest.raises(ValueError):
            Observability(invariant_every=-1)


class TestBlockCacheMastersView:
    """The read-only view backing check_invariants (no private access)."""

    def test_masters_snapshot(self):
        cache = BlockCache(node_id=0, capacity_blocks=4)
        a, b = BlockId(1, 0), BlockId(1, 1)
        cache.insert(a, master=True, age=0.0)
        cache.insert(b, master=False, age=1.0)
        masters = cache.masters()
        assert set(masters) == {a}
        # It is a snapshot: mutating the cache does not mutate the view...
        cache.promote_to_master(b)
        assert set(masters) == {a}
        assert set(cache.masters()) == {a, b}
        # ...and the view itself is immutable.
        assert isinstance(masters, tuple)
