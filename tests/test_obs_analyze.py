"""Tests for the trace analyzer (repro.obs.analyze and friends).

The central contract: for a profiled run, every request's critical-path
phase decomposition sums *exactly* (to float tolerance) to the measured
response time — no unexplained residual — and aggregating over measured
requests reproduces the workload's mean response time.
"""

import json

import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.obs import Observability
from repro.obs.analyze import (
    PHASE_ORDER,
    attribute,
    binding_resource,
    build_trees,
    decompose_request,
    load_jsonl,
    request_roots,
)
from repro.obs.export import to_chrome_trace
from repro.obs.reports import (
    format_span_tree,
    render_profile_report,
    render_timeseries,
    render_top_requests,
)
from repro.obs.timeseries import build_timeseries
from repro.traces import datasets

SYSTEMS = ["cc-basic", "cc-sched", "cc-kmc", "press"]


def _workload():
    return datasets.scaled("rutgers", 0.01, num_requests=400)


def _profiled_run(system, workload=None):
    cfg = ExperimentConfig(
        system=system,
        trace=workload if workload is not None else _workload(),
        num_nodes=4,
        mem_mb_per_node=0.5,
        num_clients=8,
        seed=0,
    )
    obs = Observability(profile=True)
    result = run_experiment(cfg, obs=obs)
    return obs, result


@pytest.fixture(scope="module")
def kmc_run():
    return _profiled_run("cc-kmc")


def _tolerance(dur_ms):
    # Accumulated float64 error over a span tree is far below this.
    return max(1e-6, 1e-9 * dur_ms)


class TestAttribution:
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_every_request_fully_attributed(self, system):
        obs, _result = _profiled_run(system)
        roots, _ = build_trees(obs.tracer.records)
        reqs = request_roots(roots)
        assert reqs, "profiled run produced no request roots"
        for root in reqs:
            profile = decompose_request(root)
            assert abs(profile.residual) < _tolerance(profile.dur), (
                f"{system}: trace {profile.trace_id} has unexplained "
                f"residual {profile.residual:.9f} ms of {profile.dur:.4f}"
            )

    def test_mean_matches_workload_measurement(self, kmc_run):
        obs, result = kmc_run
        attr = attribute(obs.tracer.records, measured_only=True)
        assert attr.count == sum(result.workload.requests_by_class.values())
        assert attr.mean_response_ms == pytest.approx(
            result.workload.mean_response_ms, rel=1e-9
        )
        # Phase means sum back to the total (the report's "total" row).
        assert sum(attr.phase_means().values()) + attr.mean_residual_ms == (
            pytest.approx(attr.mean_response_ms, rel=1e-9)
        )

    def test_phases_are_canonical(self, kmc_run):
        obs, _ = kmc_run
        attr = attribute(obs.tracer.records)
        for profile in attr.requests:
            assert set(profile.phases) <= set(PHASE_ORDER)
            assert all(v >= -1e-9 for v in profile.phases.values())

    def test_by_class_partitions_requests(self, kmc_run):
        obs, result = kmc_run
        attr = attribute(obs.tracer.records, measured_only=True)
        per_class = attr.by_class()
        assert sum(sub.count for sub in per_class.values()) == attr.count
        for cls, sub in per_class.items():
            assert sub.mean_response_ms == pytest.approx(
                result.workload.response_by_class_ms[cls], rel=1e-9
            )

    def test_measured_only_excludes_warmup(self, kmc_run):
        obs, result = kmc_run
        every = attribute(obs.tracer.records, measured_only=False)
        measured = attribute(obs.tracer.records, measured_only=True)
        assert every.count == 400
        assert measured.count < every.count

    def test_load_jsonl_roundtrip(self, kmc_run, tmp_path):
        obs, _ = kmc_run
        path = tmp_path / "trace.jsonl"
        obs.tracer.dump_jsonl(path)
        records = load_jsonl(path)
        assert len(records) == len(obs.tracer.records)
        attr_disk = attribute(records)
        attr_mem = attribute(obs.tracer.records)
        assert attr_disk.mean_response_ms == attr_mem.mean_response_ms


class TestBindingResource:
    def test_disk_binds_at_small_memory(self, kmc_run):
        obs, _ = kmc_run
        info = binding_resource(obs.registry.snapshot())
        assert info is not None
        assert info["resource"] == "disk"
        assert 0.0 < info["mean"] <= 1.0 + 1e-9
        assert info["max"] >= info["mean"]
        assert info["max_node"].startswith("node")
        assert set(info["per_resource"]) == {"cpu", "nic", "bus", "disk"}

    def test_no_utilization_metrics(self):
        assert binding_resource({"collected": {}}) is None
        assert binding_resource({}) is None

    def test_report_names_disk(self, kmc_run):
        obs, _ = kmc_run
        attr = attribute(obs.tracer.records)
        text = render_profile_report(attr, metrics=obs.registry.snapshot())
        assert "binding resource: disk" in text
        assert "total = mean response" in text

    def test_report_without_metrics_falls_back(self, kmc_run):
        obs, _ = kmc_run
        attr = attribute(obs.tracer.records)
        text = render_profile_report(attr, metrics=None)
        assert "dominant phase group" in text

    def test_report_empty_trace(self):
        assert "no finished request roots" in render_profile_report(
            attribute([])
        )


class TestProfilingIsPureObservation:
    def test_profiled_metrics_match_traced_run(self):
        """Profiling must not perturb the simulation: a profiled run and
        a plain traced run produce byte-identical metrics snapshots."""
        workload = _workload()
        profiled, _ = _profiled_run("cc-kmc", workload)

        cfg = ExperimentConfig(
            system="cc-kmc", trace=workload, num_nodes=4,
            mem_mb_per_node=0.5, num_clients=8, seed=0,
        )
        traced = Observability(trace=True)
        run_experiment(cfg, obs=traced)
        assert profiled.registry.to_json() == traced.registry.to_json()

    def test_no_unfinished_spans_after_run(self, kmc_run):
        obs, _ = kmc_run
        assert obs.tracer.open_spans == []


class TestChromeExport:
    def test_valid_trace_event_json(self, kmc_run, tmp_path):
        obs, _ = kmc_run
        doc = to_chrome_trace(obs.tracer.records)
        # Must survive a JSON round-trip (what Perfetto actually loads).
        doc = json.loads(json.dumps(doc, sort_keys=True, default=float))
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events
        names = {}
        for ev in events:
            assert ev["ph"] in ("X", "i", "M")
            assert isinstance(ev["pid"], int) and ev["pid"] >= 0
            assert isinstance(ev["tid"], int) and ev["tid"] >= 0
            if ev["ph"] == "M":
                assert ev["name"] in ("process_name", "thread_name")
                names.setdefault(ev["name"], set()).add(ev["args"]["name"])
            else:
                assert ev["ts"] >= 0.0
                assert ev["cat"] == "sim"
                assert "trace" in ev["args"] and "span" in ev["args"]
            if ev["ph"] == "X":
                assert ev["dur"] > 0.0
        # 4 nodes + the cluster pseudo-process, all named.
        assert names["process_name"] == {
            "cluster", "node0", "node1", "node2", "node3"
        }
        assert "disk" in names["thread_name"]

    def test_complete_events_cover_all_finished_spans(self, kmc_run):
        obs, _ = kmc_run
        doc = to_chrome_trace(obs.tracer.records)
        payload = [e for e in doc["traceEvents"] if e["ph"] in ("X", "i")]
        assert len(payload) == len(obs.tracer.records)

    def test_unfinished_spans_become_flagged_instants(self):
        recs = [
            {"trace": 1, "span": 1, "parent": None, "name": "a",
             "node": None, "start": 2.5, "end": None, "unfinished": True},
        ]
        events = [
            e for e in to_chrome_trace(recs)["traceEvents"]
            if e["ph"] != "M"
        ]
        assert len(events) == 1
        ev = events[0]
        assert ev["ph"] == "i"
        assert ev["s"] == "t"
        assert ev["ts"] == 2.5 * 1000.0
        assert ev["args"]["unfinished"] is True
        assert "dur" not in ev

    def test_multi_cell_merge_gets_disjoint_pid_blocks(self):
        """The fleet view: each cell's processes land in their own pid
        block and every process name is prefixed with the cell label."""
        from repro.obs.export import to_chrome_trace_multi

        def recs(node):
            return [
                {"trace": 1, "span": 1, "parent": None, "name": "request",
                 "node": node, "start": 0.0, "end": 1.0},
                {"trace": 1, "span": 2, "parent": None, "name": "request",
                 "node": None, "start": 0.0, "end": 0.5},
            ]

        doc = to_chrome_trace_multi([
            ("rutgers/press/4MB", recs(node=1)),
            ("rutgers/cc-kmc/4MB", recs(node=0)),
        ])
        cells = doc["otherData"]["cells"]
        assert [c["label"] for c in cells] == [
            "rutgers/press/4MB", "rutgers/cc-kmc/4MB"]
        # cell 0 used pids {0, 2} (cluster + node1), so cell 1's block
        # starts past its max pid
        assert cells[0]["pid_base"] == 0
        assert cells[1]["pid_base"] == 3
        names = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev.get("ph") == "M" and ev["name"] == "process_name"
        }
        assert "rutgers/press/4MB | cluster" in names
        assert "rutgers/cc-kmc/4MB | node0" in names
        cell1_pids = {
            ev["pid"] for ev in doc["traceEvents"]
            if ev["pid"] >= cells[1]["pid_base"]
        }
        cell0_pids = {
            ev["pid"] for ev in doc["traceEvents"]
            if ev["pid"] < cells[1]["pid_base"]
        }
        assert cell0_pids == {0, 2} and cell1_pids == {3, 4}


class TestTimeseries:
    def test_totals_and_bounds(self, kmc_run):
        obs, _ = kmc_run
        ts = build_timeseries(obs.tracer.records)
        windows = ts["windows"]
        assert windows
        assert ts["num_nodes"] == 4
        assert sum(w["completions"] for w in windows) == 400
        for w in windows:
            assert w["throughput_rps"] >= 0.0
            assert sum(w["by_class"].values()) == w["completions"]
            for res, u in w["utilization"].items():
                assert -1e-9 <= u <= 1.0 + 1e-9, (res, u)
            for depth in w["queue_depth"].values():
                assert depth >= -1e-9
        # Warm-up boundary: cold windows first, then warm ones.
        flags = [w["warm"] for w in windows]
        assert flags == sorted(flags)
        assert ts["warm_start_ms"] is not None

    def test_explicit_window_width(self, kmc_run):
        obs, _ = kmc_run
        ts = build_timeseries(obs.tracer.records, window_ms=50.0)
        assert ts["window_ms"] == 50.0
        assert sum(w["completions"] for w in ts["windows"]) == 400

    def test_empty_trace(self):
        assert build_timeseries([])["windows"] == []

    def test_render(self, kmc_run):
        obs, _ = kmc_run
        text = render_timeseries(build_timeseries(obs.tracer.records))
        assert "throughput" in text
        assert "disk" in text
        assert "measurement starts" in text


class TestTopRequests:
    def test_render_top_k(self, kmc_run):
        obs, _ = kmc_run
        text = render_top_requests(obs.tracer.records, k=3)
        assert "top 3 slowest" in text
        assert "#1 trace" in text and "#3 trace" in text
        assert "ph:" in text  # span trees include phase spans

    def test_slowest_first(self, kmc_run):
        obs, _ = kmc_run
        roots, _ = build_trees(obs.tracer.records)
        reqs = request_roots(roots, measured_only=True)
        slowest = max(reqs, key=lambda r: r.dur)
        text = render_top_requests(obs.tracer.records, k=1)
        assert f"#1 trace {slowest.trace_id} " in text

    def test_span_tree_depth_limit(self, kmc_run):
        obs, _ = kmc_run
        roots, _ = build_trees(obs.tracer.records)
        root = max(request_roots(roots), key=lambda r: len(list(r.walk())))
        text = format_span_tree(root, max_depth=0)
        assert "children elided" in text

    def test_unfinished_roots_get_their_own_section(self, kmc_run):
        obs, _ = kmc_run
        records = list(obs.tracer.records)
        records.append({
            "trace": 999001, "span": 999001, "parent": None,
            "name": "client", "node": 2, "start": 42.5, "end": None,
            "attrs": {"measured": True}, "unfinished": True,
        })
        text = render_top_requests(records, k=2)
        assert "top 2 slowest" in text
        assert "unfinished requests (1)" in text
        assert "excluded from the ranking" in text
        assert "trace 999001 span 999001 node=2 started @42.500 ms" in text

    def test_no_unfinished_section_when_all_finished(self, kmc_run):
        obs, _ = kmc_run
        text = render_top_requests(obs.tracer.records, k=1)
        assert "unfinished requests" not in text

    def test_only_unfinished_roots(self):
        records = [{
            "trace": 1, "span": 1, "parent": None, "name": "request",
            "node": None, "start": 0.0, "end": None, "unfinished": True,
        }]
        text = render_top_requests(records)
        assert "no finished request roots" in text
        assert "unfinished requests (1)" in text
