"""Tests for the CacheScope cache-behavior telemetry.

Two layers: unit tests drive the scope's hooks directly and check the
incremental census arithmetic; integration tests run the golden-trace
workload with ``cachestats`` on and assert the paper's mechanism shows
up — CC-KMC never evicts a master while holding a replica, CC-Basic
does constantly, and KMC keeps a smaller share of aggregate memory
wasted on duplicates.  A final set asserts the scope is *passive*: the
trace digest with telemetry enabled matches the committed goldens.
"""

import json
from pathlib import Path

import pytest

from repro.cache.blockcache import BlockCache
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.obs import Observability
from repro.obs.cachestats import (
    NULL_CACHESCOPE,
    CacheScope,
    NullCacheScope,
    load_jsonl,
)
from repro.traces import datasets

GOLDEN_DIR = Path(__file__).parent / "golden"


class FakeSim:
    def __init__(self):
        self.now = 0.0


# ---------------------------------------------------------------------------
# unit: census arithmetic
# ---------------------------------------------------------------------------
class TestCensus:
    def test_first_copy_is_not_a_duplicate(self):
        scope = CacheScope()
        scope.on_insert(0, "b", True, kb=4.0)
        assert scope.resident_copies == 1
        assert scope.duplicate_copies == 0
        assert scope.duplicate_share == 0.0

    def test_second_copy_counts_as_duplicate(self):
        scope = CacheScope()
        scope.on_insert(0, "b", True, kb=4.0)
        scope.on_insert(1, "b", False, kb=4.0)
        assert scope.resident_copies == 2
        assert scope.duplicate_copies == 1
        assert scope.duplicate_kb == pytest.approx(4.0)
        assert scope.duplicate_share == pytest.approx(0.5)

    def test_remove_returns_census_to_zero(self):
        scope = CacheScope()
        scope.on_insert(0, "b", True, kb=4.0)
        scope.on_insert(1, "b", False, kb=4.0)
        scope.on_remove(1, "b", False, kb=4.0)
        scope.on_remove(0, "b", True, kb=4.0)
        assert scope.resident_copies == 0
        assert scope.resident_kb == pytest.approx(0.0)
        assert scope.duplicate_copies == 0
        assert scope.duplicate_kb == pytest.approx(0.0)

    def test_drained_levels_snap_to_exact_zero(self):
        """+= / -= float accumulation must never leave '-0.0 KB' after
        the last copy leaves (caught on a live run: fractional block
        sizes add and subtract in different orders)."""
        scope = CacheScope()
        sizes = [1.1, 2.3, 0.7, 3.9]
        scope.on_insert(0, "b", True, kb=0.3)
        scope.on_insert(1, "b", False, kb=0.3)
        for i, kb in enumerate(sizes):
            scope.on_insert(1, f"x{i}", True, kb=kb)
        scope.on_remove(0, "b", True, kb=0.3)
        scope.on_remove(1, "b", False, kb=0.3)
        for i, kb in enumerate(sizes):
            scope.on_remove(1, f"x{i}", True, kb=kb)
        assert scope.duplicate_kb == 0.0
        assert scope.resident_kb == 0.0
        assert scope.duplicate_share == 0.0
        assert scope.per_node_census()[1]["kb"] == 0.0

    def test_removing_one_of_two_copies_removes_the_duplicate(self):
        scope = CacheScope()
        scope.on_insert(0, "b", True, kb=4.0)
        scope.on_insert(1, "b", False, kb=4.0)
        scope.on_remove(0, "b", True, kb=4.0)
        # One copy remains: it is not a duplicate of anything.
        assert scope.duplicate_copies == 0
        assert scope.resident_copies == 1

    def test_per_node_census_tracks_roles(self):
        scope = CacheScope()
        scope.on_insert(0, "a", True, kb=1.0)
        scope.on_insert(0, "b", False, kb=1.0)
        scope.on_insert(1, "a", False, kb=1.0)
        census = scope.per_node_census()
        assert census[0] == {"masters": 1, "nonmasters": 1, "kb": 2.0}
        assert census[1] == {"masters": 0, "nonmasters": 1, "kb": 1.0}

    def test_promote_moves_role_without_touching_copies(self):
        scope = CacheScope()
        scope.on_insert(0, "a", False, kb=1.0)
        scope.on_promote(0, "a")
        census = scope.per_node_census()
        assert census[0]["masters"] == 1
        assert census[0]["nonmasters"] == 0
        assert scope.resident_copies == 1

    def test_census_drift_agrees_with_blockcache(self):
        scope = CacheScope()
        cache = BlockCache(node_id=0, capacity_blocks=4, scope=scope)
        cache.insert(("f", 0), master=True, age=0.0)
        cache.insert(("f", 1), master=False, age=1.0)
        assert scope.census_drift([cache]) == []
        cache.remove(("f", 0))
        assert scope.census_drift([cache]) == []
        # Poison the scope's books: drift must be detected.
        scope._node_masters[0] = 7
        assert scope.census_drift([cache])


# ---------------------------------------------------------------------------
# unit: eviction semantics
# ---------------------------------------------------------------------------
class TestEvictions:
    def test_policy_master_eviction_with_replica_is_violation(self):
        scope = CacheScope()
        scope.on_evict(0, "b", True, 3, "drop")
        assert scope.violations() == 1
        totals = scope.snapshot()["totals"]
        assert totals["master_evictions"] == 1

    def test_policy_master_eviction_without_replica_is_clean(self):
        scope = CacheScope()
        scope.on_evict(0, "b", True, 0, "drop")
        assert scope.violations() == 0

    def test_nonmaster_eviction_is_never_a_violation(self):
        scope = CacheScope()
        scope.on_evict(0, "b", False, 5, "drop")
        assert scope.violations() == 0
        assert scope.snapshot()["totals"]["nonmaster_evictions"] == 1

    @pytest.mark.parametrize(
        "reason", ["displaced", "invalidate", "crash", "write_race",
                   "ownership"]
    )
    def test_protocol_fallout_is_ledger_only(self, reason):
        """Non-policy removals are provenance, not replacement decisions:
        a forwarded master legally displaces the destination's oldest
        master even while replicas are held."""
        scope = CacheScope()
        scope.on_evict(0, "b", True, 3, reason)
        totals = scope.snapshot()["totals"]
        assert scope.violations() == 0
        assert totals["master_evictions"] == 0
        assert totals["evictions_by_reason"] == {reason: 1}

    def test_ledger_is_a_ring_buffer(self):
        scope = CacheScope(ledger_size=3)
        for i in range(5):
            scope.on_evict(0, f"b{i}", False, 0, "drop")
        keys = [e["key"] for e in scope.ledger]
        assert keys == ["b2", "b3", "b4"]

    def test_ledger_records_destination(self):
        scope = CacheScope()
        scope.on_evict(0, ("f", 3), True, 1, "forward", dest=2)
        entry = scope.ledger[-1]
        assert entry["dest"] == 2
        assert entry["key"] == "f:3"
        assert entry["nonmasters_held"] == 1


# ---------------------------------------------------------------------------
# unit: forwarding hops / stale lookups
# ---------------------------------------------------------------------------
class TestForwarding:
    def test_hop_chain_grows_per_forward(self):
        scope = CacheScope()
        scope.on_forward("b", "installed")
        scope.on_forward("b", "installed")
        scope.on_forward("b", "installed")
        assert scope.snapshot()["hop_histogram"] == {"1": 1, "2": 1, "3": 1}

    def test_master_exit_resets_the_chain(self):
        scope = CacheScope()
        scope.on_forward("b", "installed")
        scope.on_master_exit("b")
        scope.on_forward("b", "installed")
        assert scope.snapshot()["hop_histogram"] == {"1": 2}

    def test_dropped_outcome_ends_the_chain(self):
        scope = CacheScope()
        scope.on_forward("b", "installed")
        scope.on_forward("b", "dropped")
        scope.on_forward("b", "installed")
        hist = scope.snapshot()["hop_histogram"]
        assert hist == {"1": 2, "2": 1}

    def test_fresh_master_from_disk_restarts_the_chain(self):
        scope = CacheScope()
        scope.on_forward("b", "installed")
        scope.on_master_reset("b")
        scope.on_forward("b", "installed")
        assert scope.snapshot()["hop_histogram"] == {"1": 2}

    def test_outcomes_are_tallied(self):
        scope = CacheScope()
        scope.on_forward("a", "installed")
        scope.on_forward("b", "merged")
        scope.on_forward("c", "dropped")
        totals = scope.snapshot()["totals"]
        assert totals["forwards"] == 3
        assert totals["forward_outcomes"] == {
            "dropped": 1, "installed": 1, "merged": 1,
        }

    def test_stale_lookups_accumulate(self):
        scope = CacheScope()
        scope.on_stale(2)
        scope.on_stale()
        assert scope.snapshot()["totals"]["stale_lookups"] == 3


# ---------------------------------------------------------------------------
# unit: windows, export, null scope
# ---------------------------------------------------------------------------
class TestWindowsAndExport:
    def test_time_weighted_duplicate_share(self):
        """The share is a ratio of byte-time integrals: 1 of 2 KB
        duplicated for 50 ms then 0 of 1 KB for 50 ms gives
        50 / (100 + 50) = 1/3 — not the arithmetic mean of 0.5 and 0."""
        sim = FakeSim()
        scope = CacheScope(window_ms=100.0)
        scope.attach(sim)
        scope.on_insert(0, "b", True, kb=1.0)
        scope.on_insert(1, "b", False, kb=1.0)   # share now 0.5
        sim.now = 50.0
        scope.on_remove(1, "b", False, kb=1.0)   # share back to 0.0
        sim.now = 100.0
        rows = scope.snapshot()["windows"]
        assert len(rows) == 1
        assert rows[0]["duplicate_share"] == pytest.approx(1.0 / 3.0)

    def test_window_rows_carry_event_counts(self):
        sim = FakeSim()
        scope = CacheScope(window_ms=100.0)
        scope.attach(sim)
        scope.on_insert(0, "b", True, kb=1.0)
        sim.now = 10.0
        scope.on_evict(0, "b", True, 2, "drop")
        sim.now = 150.0
        scope.on_evict(0, "c", False, 0, "drop")
        rows = scope.snapshot()["windows"]
        assert len(rows) == 2
        assert rows[0]["violations"] == 1.0
        assert rows[1]["nonmaster_evictions"] == 1.0

    def test_dump_and_load_round_trip(self, tmp_path):
        sim = FakeSim()
        scope = CacheScope(window_ms=100.0)
        scope.attach(sim)
        scope.on_insert(0, "b", True, kb=2.0)
        scope.on_insert(1, "b", False, kb=2.0)
        sim.now = 120.0
        scope.on_evict(1, "b", False, 1, "drop")
        scope.on_forward("b", "installed")
        path = tmp_path / "cs.jsonl"
        scope.dump_jsonl(path)
        snap = load_jsonl(path)
        direct = scope.snapshot()
        assert snap["totals"] == json.loads(
            json.dumps(direct["totals"], default=float)
        )
        assert len(snap["windows"]) == len(direct["windows"])
        assert len(snap["ledger"]) == 1
        assert snap["hop_histogram"] == {"1": 1}

    def test_ctor_validation(self):
        with pytest.raises(ValueError):
            CacheScope(window_ms=0.0)
        with pytest.raises(ValueError):
            CacheScope(ledger_size=0)

    def test_null_scope_is_inert(self):
        scope = NullCacheScope()
        assert not scope.active
        scope.on_insert(0, "b", True)
        scope.on_evict(0, "b", True, 3, "drop")
        scope.on_forward("b", "installed")
        scope.on_stale()
        assert not NULL_CACHESCOPE.active

    def test_observability_wires_cachescope(self):
        on = Observability(cachestats=True)
        off = Observability()
        assert on.cachescope.active
        assert not off.cachescope.active


# ---------------------------------------------------------------------------
# integration: the paper's mechanism
# ---------------------------------------------------------------------------
def _workload():
    return datasets.scaled("rutgers", 0.01, num_requests=400)


def _run(system, cachestats=True):
    cfg = ExperimentConfig(
        system=system,
        trace=_workload(),
        num_nodes=4,
        mem_mb_per_node=0.5,
        num_clients=8,
        seed=0,
    )
    obs = Observability(trace=True, cachestats=cachestats)
    run_experiment(cfg, obs=obs)
    return obs


@pytest.fixture(scope="module")
def kmc_obs():
    return _run("cc-kmc")


@pytest.fixture(scope="module")
def basic_obs():
    return _run("cc-basic")


class TestMechanism:
    def test_kmc_never_violates_by_construction(self, kmc_obs):
        assert kmc_obs.cachescope.violations() == 0

    def test_basic_violates_constantly(self, basic_obs):
        assert basic_obs.cachescope.violations() > 0

    def test_kmc_wastes_less_memory_on_duplicates(self, kmc_obs, basic_obs):
        """The paper's explanation for Figure 2's gap, measured: KMC's
        eviction preference keeps the duplicate-byte share below
        global-LRU's over the run."""

        def mean_share(obs):
            rows = obs.cachescope.snapshot()["windows"]
            shares = [r["duplicate_share"] for r in rows]
            return sum(shares) / len(shares)

        assert mean_share(kmc_obs) < mean_share(basic_obs)

    def test_census_matches_final_cache_contents(self, kmc_obs, basic_obs):
        for obs in (kmc_obs, basic_obs):
            snap = obs.cachescope.snapshot()
            totals = snap["totals"]
            per_node = snap["per_node"]
            assert totals["resident_copies"] == sum(
                row["masters"] + row["nonmasters"]
                for row in per_node.values()
            )

    def test_directory_census_agrees_with_cache_masters(self, kmc_obs):
        totals = kmc_obs.cachescope.snapshot()["totals"]
        per_node = kmc_obs.cachescope.snapshot()["per_node"]
        assert totals["directory_masters_per_node"] == {
            node: row["masters"] for node, row in per_node.items()
        }

    def test_press_has_no_masters_and_no_violations(self):
        obs = _run("press")
        totals = obs.cachescope.snapshot()["totals"]
        assert totals["violations"] == 0
        assert totals["master_evictions"] == 0
        assert totals["resident_copies"] > 0


@pytest.mark.parametrize("system", ["cc-basic", "cc-sched", "cc-kmc", "press"])
def test_cachestats_is_passive(system, monkeypatch):
    """Enabling cache telemetry must not perturb the simulation: the
    trace digest with cachestats on equals the committed golden digest
    (which is produced with cachestats off)."""
    # Pin the oracle directory: this compares against the oracle
    # goldens, so an inherited REPRO_DIRECTORY must not leak in.
    monkeypatch.delenv("REPRO_DIRECTORY", raising=False)
    path = GOLDEN_DIR / f"{system}.json"
    assert path.exists(), "golden fingerprints must exist for this check"
    golden = json.loads(path.read_text())
    obs = _run(system, cachestats=True)
    assert obs.tracer.digest() == golden["trace_digest"]
    assert len(obs.tracer.records) == golden["trace_spans"]
