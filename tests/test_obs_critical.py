"""Tests for critical-path extraction (repro.obs.critical)."""

import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.obs import Observability
from repro.obs.analyze import attribute, build_trees, request_roots
from repro.obs.critical import critical_path, critical_profile
from repro.obs.reports import render_critical_report
from repro.obs.schema import OUTPUT_SCHEMA_VERSION
from repro.traces import datasets


@pytest.fixture(scope="module")
def kmc_records():
    cfg = ExperimentConfig(
        system="cc-kmc",
        trace=datasets.scaled("rutgers", 0.01, num_requests=400),
        num_nodes=4,
        mem_mb_per_node=0.5,
        num_clients=8,
        seed=0,
    )
    obs = Observability(profile=True)
    run_experiment(cfg, obs=obs)
    return obs.tracer.records


def _rec(span, parent, name, start, end, node=None, trace=1, **attrs):
    return {"trace": trace, "span": span, "parent": parent, "name": name,
            "node": node, "start": start, "end": end, "attrs": attrs}


class TestCriticalPath:
    def test_segments_tile_every_request(self, kmc_records):
        roots, _ = build_trees(kmc_records)
        reqs = request_roots(roots)
        assert reqs
        for root in reqs:
            segs = critical_path(root)
            assert segs, "finished request with empty critical path"
            covered = 0.0
            for seg in segs:
                assert seg.dur > 0.0
                assert seg.start >= root.start - 1e-9
                assert seg.end <= root.end + 1e-9
                covered += seg.dur
            # Ordered and non-overlapping.
            for a, b in zip(segs, segs[1:]):
                assert b.start >= a.end - 1e-9
            assert covered == pytest.approx(root.dur, abs=1e-6)

    def test_phase_totals_match_attribution(self, kmc_records):
        """Tiling property: per-phase critical ms == attribute() buckets."""
        profile = critical_profile(kmc_records)
        attr = attribute(kmc_records)
        assert profile["requests"] == attr.count
        assert profile["mean_critical_ms"] == pytest.approx(
            attr.mean_response_ms, rel=1e-9
        )
        means = attr.phase_means()
        n = profile["requests"]
        for phase, total in profile["phase_critical_ms"].items():
            assert total / n == pytest.approx(
                means.get(phase, 0.0), abs=1e-9
            ), phase

    def test_profile_schema_and_edges(self, kmc_records):
        profile = critical_profile(kmc_records, top_edges=5)
        assert profile["schema_version"] == OUTPUT_SCHEMA_VERSION
        assert profile["kind"] == "critical"
        assert abs(profile["mean_residual_ms"]) < 1e-9
        shares = profile["phase_critical_share"]
        assert sum(shares.values()) == pytest.approx(1.0, abs=1e-9)
        edges = profile["top_edges"]
        assert 0 < len(edges) <= 5
        for edge in edges:
            assert " -> " in edge["edge"]
            assert edge["count"] >= 1
            assert edge["ms"] > 0.0
        # Ranked by critical milliseconds, descending.
        ms = [e["ms"] for e in edges]
        assert ms == sorted(ms, reverse=True)

    def test_measured_only_excludes_warmup(self, kmc_records):
        everything = critical_profile(kmc_records, measured_only=False)
        measured = critical_profile(kmc_records, measured_only=True)
        assert everything["requests"] == 400
        assert measured["requests"] == 300


class TestSyntheticTraces:
    def test_serial_phase_splits_and_gaps(self):
        recs = [
            _rec(1, None, "request", 0.0, 10.0),
            _rec(2, 1, "ph", 0.0, 2.0, node=0, p="cpu", q=0.5),
            _rec(3, 1, "ph", 3.0, 9.0, node=0, p="disk", svc=4.0, seek=1.0),
        ]
        roots, _ = build_trees(recs)
        segs = critical_path(roots[0])
        got = [(s.phase, s.start, s.end) for s in segs]
        assert got == [
            ("cpu.queue", 0.0, 0.5),
            ("cpu.service", 0.5, 2.0),
            ("other", 2.0, 3.0),
            ("disk.queue", 3.0, 5.0),
            ("disk.seek", 5.0, 6.0),
            ("disk.transfer", 6.0, 9.0),
            ("other", 9.0, 10.0),
        ]

    def test_fetch_fan_out_backward_walk(self):
        # Fan-out behind a fetch: the sibling disk phase covers the tail
        # of the wait, the uncovered head is fetch-classified queueing.
        recs = [
            _rec(1, None, "request", 0.0, 8.0),
            _rec(2, 1, "ph", 0.0, 8.0, node=0, p="fetch"),
            _rec(3, 1, "ph", 5.0, 8.0, node=1, p="disk", svc=3.0, seek=1.0),
        ]
        roots, _ = build_trees(recs)
        segs = critical_path(roots[0])
        got = [(s.phase, s.start, s.end, s.node) for s in segs]
        assert got == [
            ("disk.queue", 0.0, 5.0, 0),
            ("disk.seek", 5.0, 6.0, 1),
            ("disk.transfer", 6.0, 8.0, 1),
        ]

    def test_fetch_join_gap_is_coalesce_wait(self):
        recs = [
            _rec(1, None, "request", 0.0, 8.0),
            _rec(2, 1, "ph", 0.0, 8.0, node=0, p="fetch", j=1),
            _rec(3, 1, "ph", 5.0, 8.0, node=1, p="disk", svc=3.0, seek=1.0),
        ]
        roots, _ = build_trees(recs)
        segs = critical_path(roots[0])
        assert segs[0].phase == "coalesce.wait"
        assert (segs[0].start, segs[0].end) == (0.0, 5.0)

    def test_edge_aggregation(self):
        recs = [
            _rec(1, None, "request", 0.0, 4.0),
            _rec(2, 1, "ph", 0.0, 2.0, node=0, p="cpu"),
            _rec(3, 1, "ph", 2.0, 4.0, node=1, p="wire"),
        ]
        profile = critical_profile(recs, measured_only=False)
        assert profile["requests"] == 1
        edges = {e["edge"]: e for e in profile["top_edges"]}
        assert edges["cpu.service@0 -> wire@1"]["count"] == 1
        assert edges["cpu.service@0 -> wire@1"]["ms"] == pytest.approx(2.0)


class TestRenderCritical:
    def test_report_text(self, kmc_records):
        text = render_critical_report(critical_profile(kmc_records))
        assert "critical-path profile" in text
        assert "total = mean critical path" in text
        assert "top critical edges" in text
        assert "tiling residual" in text

    def test_empty_profile(self):
        text = render_critical_report(critical_profile([]))
        assert "no finished request roots" in text
