"""Tests for differential attribution (repro.obs.diff) and the shared
versioned output schema (repro.obs.schema)."""

import json

import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.obs import Observability
from repro.obs.analyze import attribute, attribution_to_dict
from repro.obs.diff import diff_attributions, load_attribution
from repro.obs.reports import render_diff_report
from repro.obs.schema import (
    OUTPUT_SCHEMA_VERSION,
    REPORT_KINDS,
    as_report,
    check_report,
)
from repro.traces import datasets


def _attr(mean, phases, residual=0.0, requests=100, by_class=None,
          binding=None):
    return as_report("attribution", {
        "requests": requests,
        "mean_response_ms": mean,
        "mean_residual_ms": residual,
        "phase_means_ms": phases,
        "by_class": by_class or {},
        "binding_resource": binding,
    })


def _profiled_attr(mem_mb):
    cfg = ExperimentConfig(
        system="cc-kmc",
        trace=datasets.scaled("rutgers", 0.01, num_requests=400),
        num_nodes=4,
        mem_mb_per_node=mem_mb,
        num_clients=8,
        seed=0,
    )
    obs = Observability(profile=True)
    run_experiment(cfg, obs=obs)
    return obs, attribution_to_dict(attribute(obs.tracer.records))


class TestDiffAttributions:
    def test_perturbed_phase_is_named(self):
        base = _attr(6.0, {"disk.queue": 5.0, "cpu.service": 1.0})
        cur = _attr(8.0, {"disk.queue": 7.0, "cpu.service": 1.0})
        diff = diff_attributions(base, cur)
        assert diff["kind"] == "diff"
        assert diff["schema_version"] == OUTPUT_SCHEMA_VERSION
        assert diff["delta_ms"] == pytest.approx(2.0)
        assert diff["regressed_phase"] == "disk.queue"
        assert diff["improved_phase"] is None
        assert diff["conservation_residual_ms"] == pytest.approx(0.0,
                                                                 abs=1e-12)
        top = diff["top_regressions"][0]
        assert top["phase"] == "disk.queue"
        assert top["share"] == pytest.approx(1.0)

    def test_improvement_is_named(self):
        base = _attr(8.0, {"disk.queue": 7.0, "cpu.service": 1.0})
        cur = _attr(6.0, {"disk.queue": 5.0, "cpu.service": 1.0})
        diff = diff_attributions(base, cur)
        assert diff["delta_ms"] == pytest.approx(-2.0)
        assert diff["improved_phase"] == "disk.queue"
        assert diff["regressed_phase"] is None
        assert diff["top_improvements"][0]["share"] == pytest.approx(1.0)

    def test_phase_union_covers_both_sides(self):
        base = _attr(1.0, {"cpu.service": 1.0})
        cur = _attr(2.0, {"wire": 2.0})
        diff = diff_attributions(base, cur)
        assert diff["phase_delta_ms"] == {
            "cpu.service": -1.0, "wire": 2.0,
        }
        assert diff["conservation_residual_ms"] == pytest.approx(0.0)

    def test_by_class_and_binding_delta(self):
        base = _attr(
            6.0, {"disk.queue": 6.0},
            by_class={"disk": {"mean_response_ms": 10.0, "requests": 50}},
            binding={"resource": "disk"},
        )
        cur = _attr(
            7.0, {"disk.queue": 7.0},
            by_class={"disk": {"mean_response_ms": 12.0, "requests": 50},
                      "local": {"mean_response_ms": 0.5, "requests": 10}},
            binding={"resource": "cpu"},
        )
        diff = diff_attributions(base, cur)
        assert diff["by_class_delta"]["disk"]["delta_ms"] == pytest.approx(2.0)
        assert "local" in diff["by_class_delta"]
        assert diff["binding_resource"] == {
            "base": "disk", "current": "cpu", "changed": True,
        }

    def test_conservation_on_real_runs(self):
        """Memory pressure perturbation: deltas telescope exactly and the
        report names a disk-side phase (less cache -> more disk time)."""
        _, base = _profiled_attr(0.5)
        _, cur = _profiled_attr(0.25)
        diff = diff_attributions(base, cur)
        assert diff["delta_ms"] > 0.0
        assert abs(diff["conservation_residual_ms"]) < 1e-9
        assert diff["regressed_phase"].startswith(("disk", "master"))
        # Shares can exceed 1.0 when other phases improved, but every
        # named regression contributes positively.
        assert all(r["share"] > 0.0 for r in diff["top_regressions"])


class TestLoadAttribution:
    def test_loads_pretty_printed_json(self, tmp_path):
        doc = _attr(6.0, {"disk.queue": 6.0})
        path = tmp_path / "attr.json"
        path.write_text(json.dumps(doc, indent=2, sort_keys=True))
        assert load_attribution(path) == doc

    def test_loads_trace_jsonl_on_the_fly(self, tmp_path):
        obs, direct = _profiled_attr(0.5)
        path = tmp_path / "trace.jsonl"
        obs.tracer.dump_jsonl(path)
        loaded = load_attribution(path)
        assert loaded["kind"] == "attribution"
        assert loaded["mean_response_ms"] == pytest.approx(
            direct["mean_response_ms"]
        )

    def test_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(as_report("slo", {"windows": []})))
        with pytest.raises(ValueError, match="expected a"):
            load_attribution(path)

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json {")
        with pytest.raises(json.JSONDecodeError):
            load_attribution(path)


class TestRenderDiff:
    def test_regression_text(self):
        base = _attr(6.0, {"disk.queue": 5.0, "cpu.service": 1.0})
        cur = _attr(8.0, {"disk.queue": 7.0, "cpu.service": 1.0})
        text = render_diff_report(diff_attributions(base, cur))
        assert "conservation check" in text
        assert "regression explained by: disk.queue" in text
        assert "total = Δ mean response" in text

    def test_no_change_text(self):
        base = _attr(6.0, {"disk.queue": 6.0})
        text = render_diff_report(diff_attributions(base, base))
        assert "mean response unchanged" in text


class TestOutputSchema:
    def test_round_trip_all_kinds(self):
        """Satellite contract: every report kind shares one versioned
        envelope and survives a JSON round trip."""
        for kind in REPORT_KINDS:
            doc = as_report(kind, {"payload": [1, 2, 3]})
            assert doc["schema_version"] == OUTPUT_SCHEMA_VERSION
            assert doc["kind"] == kind
            back = json.loads(json.dumps(doc, sort_keys=True))
            assert back == doc
            assert check_report(back) == kind
            assert check_report(back, kind) == kind

    def test_kind_mismatch_rejected(self):
        doc = as_report("slo", {})
        with pytest.raises(ValueError, match="expected a"):
            check_report(doc, "attribution")

    def test_unknown_version_rejected(self):
        doc = as_report("diff", {})
        doc["schema_version"] = OUTPUT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            check_report(doc)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            as_report("bogus", {})
        doc = as_report("diff", {})
        doc["kind"] = "bogus"
        with pytest.raises(ValueError):
            check_report(doc)
