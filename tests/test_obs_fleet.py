"""Tests for cross-cell fleet aggregation over a sweep's ledger slice.

The load-bearing property is the conservation check: per-request phase
sums telescope to root durations, so ``(Σ phase_means + residual) · n``
summed across any subset of cells must reconcile exactly (to float
tolerance) with the summed response-time totals — hypothesis drives
random cell subsets through the identity, and a corrupted artifact must
trip it.
"""

import itertools
import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.fleet import (
    CONSERVATION_REL_TOL,
    conservation_check,
    fleet_report,
    select_sweep,
)
from repro.obs.ledger import Ledger, load_ledger
from repro.obs.reports import render_fleet_report
from repro.obs.schema import (
    OUTPUT_SCHEMA_VERSION,
    REPORT_KINDS,
    as_report,
    check_report,
)
from repro.obs.slo import SloSpec


def fake_clock():
    counter = itertools.count()
    return lambda: 1_700_000_000.0 + float(next(counter))


def attr_doc(requests, phases, residual, binding=None):
    """A self-consistent attribution artifact (identity holds exactly)."""
    mean = sum(phases.values()) + residual
    return as_report("attribution", {
        "requests": requests,
        "mean_response_ms": mean,
        "mean_residual_ms": residual,
        "phase_means_ms": dict(phases),
        "by_class": {},
        "binding_resource": (
            {"resource": binding, "utilization": 0.9} if binding else None
        ),
    })


def build_sweep_ledger(tmp_path, cells):
    """Write a sweep + cell ledger (artifact paths ledger-relative)."""
    path = tmp_path / "ledger.jsonl"
    ledger = Ledger(str(path), clock=fake_clock())
    sweep = ledger.append(
        "sweep", figure="fig2", cells=len(cells), workers=2,
        progress={"elapsed_s": 10.0, "cells_per_s": 0.4, "done": len(cells),
                  "failed": sum(1 for c in cells if not c.get("ok", True))},
        obs_overhead={"events": 5000.0, "events_per_s_tracer_on": 1.0e5,
                      "events_per_s_tracer_off": 2.0e5,
                      "overhead_frac": 0.5},
        artifacts={},
    )
    for i, c in enumerate(cells):
        ok = c.get("ok", True)
        artifacts = {}
        if ok and "phases" in c:
            rel = f"cell-{i:04d}-attr.json"
            (tmp_path / rel).write_text(json.dumps(attr_doc(
                c.get("requests", 100), c["phases"],
                c.get("residual", 1.0), c.get("binding"),
            ), indent=2, sort_keys=True))
            artifacts["attribution"] = rel
        summary = {}
        if ok:
            summary = {
                "throughput_rps": c.get("rps", 100.0),
                "mean_response_ms": 5.0,
                "hit_rate_total": 0.5,
                "p95_ms": c.get("p95", 8.0),
                "p99_ms": c.get("p99", 9.0),
                "binding_resource": c.get("binding"),
            }
        fields = dict(
            cell_index=i, system=c["system"],
            workload=c.get("workload", "rutgers"), num_nodes=4,
            mem_mb_per_node=c.get("mem", 4), num_clients=8, seed=0,
            params_digest="0" * 16, wall_s=1.0 + i, worker=f"w{i % 2}",
            summary=summary, artifacts=artifacts,
        )
        if not ok:
            fields["error"] = c.get("error", "RuntimeError: boom")
        ledger.append("cell", status="ok" if ok else "failed",
                      parent=sweep["run_id"], **fields)
    return path, sweep


# ---------------------------------------------------------------------------
# sweep selection
# ---------------------------------------------------------------------------
class TestSelectSweep:
    def test_latest_by_default(self, tmp_path):
        path, _first = build_sweep_ledger(tmp_path, [{"system": "press"}])
        ledger = Ledger(str(path), clock=fake_clock())
        second = ledger.append("sweep", figure="fig2", cells=0, workers=1)
        sweep, cells = select_sweep(load_ledger(str(path)))
        assert sweep["run_id"] == second["run_id"]
        assert cells == []

    def test_prefix_pins_an_earlier_sweep(self, tmp_path):
        path, first = build_sweep_ledger(tmp_path, [{"system": "press"}])
        Ledger(str(path), clock=fake_clock()).append(
            "sweep", figure="fig2", cells=0, workers=1)
        sweep, cells = select_sweep(load_ledger(str(path)),
                                    first["run_id"][:8])
        assert sweep["run_id"] == first["run_id"]
        assert len(cells) == 1 and cells[0]["system"] == "press"

    def test_errors(self, tmp_path):
        with pytest.raises(ValueError, match="no sweep records"):
            select_sweep([{"kind": "run"}])
        with pytest.raises(ValueError, match="no sweep record with run id"):
            select_sweep([{"kind": "sweep", "run_id": "aaaa"}], "zzzz")
        with pytest.raises(ValueError, match="ambiguous"):
            select_sweep([{"kind": "sweep", "run_id": "aaa1"},
                          {"kind": "sweep", "run_id": "aaa2"}], "aaa")


# ---------------------------------------------------------------------------
# conservation check
# ---------------------------------------------------------------------------
cell_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=10_000),          # requests
        st.lists(st.floats(min_value=0.0, max_value=1_000.0),
                 max_size=6),                                # phase means
        st.floats(min_value=0.0, max_value=100.0),           # residual
    ),
    min_size=1, max_size=10,
)


class TestConservation:
    @given(cell_specs)
    def test_identity_holds_over_random_cell_subsets(self, specs):
        """Any fleet of self-consistent cells reconciles exactly."""
        rows = []
        for n, phases, residual in specs:
            means = {f"phase{j}": v for j, v in enumerate(phases)}
            rows.append({"_attribution": {
                "requests": n,
                "mean_response_ms": sum(means.values()) + residual,
                "mean_residual_ms": residual,
                "phase_means_ms": means,
            }})
        check = conservation_check(rows)
        assert check["ok"]
        assert check["cells_checked"] == len(specs)
        assert check["error_ms"] <= check["bound_ms"]
        assert check["bound_ms"] == CONSERVATION_REL_TOL * max(
            1.0, abs(check["total_ms"]))

    def test_stale_artifact_trips_the_check(self, tmp_path):
        path, _ = build_sweep_ledger(tmp_path, [
            {"system": "press", "phases": {"disk.queue": 4.0}},
            {"system": "cc-kmc", "phases": {"disk.queue": 3.0}},
        ])
        # Corrupt one artifact: the recorded mean no longer telescopes.
        art = tmp_path / "cell-0000-attr.json"
        doc = json.loads(art.read_text())
        doc["mean_response_ms"] += 1.0
        art.write_text(json.dumps(doc))
        report = fleet_report(load_ledger(str(path)),
                              base_dir=str(tmp_path))
        assert not report["conservation"]["ok"]
        assert "VIOLATED" in render_fleet_report(report)

    def test_no_attributions_is_not_ok(self):
        check = conservation_check([{"_attribution": None}, {}])
        assert not check["ok"] and check["cells_checked"] == 0


# ---------------------------------------------------------------------------
# the fleet report
# ---------------------------------------------------------------------------
def _three_cell_fleet(tmp_path):
    return build_sweep_ledger(tmp_path, [
        {"system": "press", "mem": 4, "rps": 100.0, "binding": "disk",
         "phases": {"disk.queue": 6.0, "cpu.service": 1.0}},
        {"system": "press", "mem": 16, "rps": 220.0, "binding": "cpu",
         "phases": {"disk.queue": 2.0, "cpu.service": 1.5}},
        {"system": "cc-kmc", "mem": 4, "rps": 150.0, "binding": "disk",
         "phases": {"disk.queue": 4.0, "net.wire": 0.5}},
    ])


class TestFleetReport:
    def test_schema_round_trip(self, tmp_path):
        path, sweep = _three_cell_fleet(tmp_path)
        report = fleet_report(load_ledger(str(path)),
                              base_dir=str(tmp_path))
        assert "fleet" in REPORT_KINDS
        text = json.dumps(report, sort_keys=True, default=float)
        doc = json.loads(text)
        assert check_report(doc, "fleet") == "fleet"
        assert doc["schema_version"] == OUTPUT_SCHEMA_VERSION
        assert doc["sweep"]["run_id"] == sweep["run_id"]
        # the internal _attribution join never leaks into the report
        assert all(not k.startswith("_")
                   for cell in doc["cells"] for k in cell)

    def test_rollups(self, tmp_path):
        path, _ = _three_cell_fleet(tmp_path)
        report = fleet_report(load_ledger(str(path)),
                              base_dir=str(tmp_path))
        assert report["conservation"]["ok"]
        assert report["conservation"]["cells_checked"] == 3
        # most-frequent binder first, ties alphabetical
        assert list(report["binding_resources"].items()) == [
            ("disk", 2), ("cpu", 1)]
        assert report["phase_totals_ms"]["disk.queue"] == pytest.approx(
            (6.0 + 2.0 + 4.0) * 100)
        matrix = report["matrix"]
        assert matrix["traces"] == ["rutgers"]
        assert matrix["systems"] == ["press", "cc-kmc"]
        assert matrix["memories_mb"] == [4, 16]
        grid = matrix["throughput_rps"]["rutgers"]
        assert grid["press"] == [100.0, 220.0]
        assert grid["cc-kmc"] == [150.0, None]  # gap stays explicit

    def test_failed_cells_are_reported_not_aggregated(self, tmp_path):
        path, _ = build_sweep_ledger(tmp_path, [
            {"system": "press", "rps": 100.0, "binding": "disk",
             "phases": {"disk.queue": 4.0}},
            {"system": "cc-kmc", "ok": False,
             "error": "ValueError: unknown system"},
        ])
        report = fleet_report(load_ledger(str(path)),
                              base_dir=str(tmp_path))
        assert report["sweep"]["cells"] == 2
        assert report["sweep"]["cells_ok"] == 1
        assert report["sweep"]["cells_failed"] == 1
        assert report["failed_cells"][0]["error"] \
            == "ValueError: unknown system"
        assert report["binding_resources"] == {"disk": 1}
        rendered = render_fleet_report(report)
        assert "failed cells (1):" in rendered
        assert "ValueError: unknown system" in rendered

    def test_fleet_slo_evaluation(self, tmp_path):
        path, _ = build_sweep_ledger(tmp_path, [
            {"system": "press", "p95": 8.0, "p99": 9.0},
            {"system": "cc-kmc", "p95": 30.0, "p99": 45.0},
        ])
        spec = SloSpec(window_ms=1000.0, p95_ms=10.0, p99_ms=40.0)
        report = fleet_report(load_ledger(str(path)), slo=spec,
                              base_dir=str(tmp_path))
        slo = report["slo"]
        assert slo["cells_evaluated"] == 2
        assert slo["cells_breaching"] == 1 and not slo["ok"]
        breaches = slo["breaches"][0]["breaches"]
        assert any("p95" in b for b in breaches)
        assert any("p99" in b for b in breaches)
        rendered = render_fleet_report(report)
        assert "fleet SLO [BREACHED]" in rendered

    def test_render_smoke(self, tmp_path):
        path, _ = _three_cell_fleet(tmp_path)
        report = fleet_report(load_ledger(str(path)),
                              base_dir=str(tmp_path))
        rendered = render_fleet_report(report)
        assert "fleet report — sweep" in rendered
        assert "conservation check [OK]" in rendered
        assert "binding-resource frequency" in rendered
        assert "throughput heatmap — rutgers" in rendered
        assert "per-cell summary" in rendered
        assert "observability overhead" in rendered
