"""Tests for the append-only provenance run ledger.

The determinism contract: with an injected clock and a pinned
``REPRO_GIT_SHA``/scheduler/directory environment, appending the same
records produces a byte-identical ledger file — ``run_id`` is a digest
of the record itself, so identical provenance means identical identity.
"""

import itertools
import json

import pytest

from repro.bench.schema import dump_record, wrap_result
from repro.obs.ledger import (
    LEDGER_VERSION,
    RECORD_KINDS,
    Ledger,
    environment_stamp,
    filter_records,
    find_record,
    latest_sweep,
    load_ledger,
    measure_observability_overhead,
    run_id,
)
from repro.obs.ledger import main as ledger_main
from repro.obs.schema import as_report


def fake_clock(start=1_700_000_000.0, step=1.0):
    counter = itertools.count()
    return lambda: start + step * next(counter)


@pytest.fixture
def pinned_env(monkeypatch):
    """Pin every environment input a ledger record captures."""
    monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
    monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
    monkeypatch.delenv("REPRO_DIRECTORY", raising=False)


def _populate(path, clock=None):
    """A small representative ledger: run + sweep + two cells."""
    ledger = Ledger(str(path), clock=clock or fake_clock())
    ledger.append("run", system="cc-kmc", workload="rutgers",
                  mem_mb_per_node=0.5, seed=0, wall_s=1.25)
    sweep = ledger.append("sweep", figure="fig2", cells=2, workers=4)
    ledger.append("cell", parent=sweep["run_id"], cell_index=0,
                  system="press", workload="rutgers", mem_mb_per_node=0.1,
                  seed=0, wall_s=0.5)
    ledger.append("cell", status="failed", parent=sweep["run_id"],
                  cell_index=1, system="cc-gms", workload="berkeley",
                  mem_mb_per_node=0.5, seed=0, wall_s=0.2,
                  error="RuntimeError: boom")
    return ledger, sweep


class TestLedger:
    def test_append_stamps_provenance(self, tmp_path, pinned_env):
        ledger = Ledger(str(tmp_path / "l.jsonl"), clock=fake_clock())
        rec = ledger.append("run", system="cc-kmc", wall_s=2.0)
        assert rec["ledger_version"] == LEDGER_VERSION
        assert rec["kind"] == "run"
        assert rec["status"] == "ok"
        assert rec["git_sha"] == "cafebabe"
        assert rec["recorded_at"] == 1_700_000_000.0
        assert rec["env"] == {"scheduler": "heap", "directory": "oracle"}
        assert rec["run_id"] == run_id(rec)
        assert len(rec["run_id"]) == 16

    def test_unknown_kind_rejected(self, tmp_path):
        ledger = Ledger(str(tmp_path / "l.jsonl"))
        with pytest.raises(ValueError, match="unknown ledger record kind"):
            ledger.append("banana")
        assert not (tmp_path / "l.jsonl").exists()

    def test_round_trip_append_order(self, tmp_path, pinned_env):
        path = tmp_path / "l.jsonl"
        _populate(path)
        records = load_ledger(str(path))
        assert [r["kind"] for r in records] == ["run", "sweep", "cell",
                                                "cell"]
        for rec in records:
            assert rec["kind"] in RECORD_KINDS
            assert rec["run_id"] == run_id(rec)

    def test_byte_determinism_under_injected_clock(self, tmp_path,
                                                   pinned_env):
        """Same records + same clock + pinned env => identical bytes."""
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _populate(a)
        _populate(b)
        assert a.read_bytes() == b.read_bytes()

    def test_run_id_tracks_content(self, tmp_path, pinned_env):
        ledger = Ledger(str(tmp_path / "l.jsonl"), clock=lambda: 1.0)
        first = ledger.append("run", seed=0)
        same = ledger.append("run", seed=0)
        other = ledger.append("run", seed=1)
        assert first["run_id"] == same["run_id"]
        assert first["run_id"] != other["run_id"]

    def test_append_only_across_reopens(self, tmp_path, pinned_env):
        path = tmp_path / "l.jsonl"
        Ledger(str(path), clock=fake_clock()).append("run", seed=0)
        Ledger(str(path), clock=fake_clock()).append("run", seed=1)
        records = load_ledger(str(path))
        assert [r["seed"] for r in records] == [0, 1]

    def test_environment_stamp_tracks_knobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        monkeypatch.delenv("REPRO_DIRECTORY", raising=False)
        assert environment_stamp() == {"scheduler": "heap",
                                       "directory": "oracle"}
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        monkeypatch.setenv("REPRO_DIRECTORY", "partitioned")
        assert environment_stamp() == {"scheduler": "calendar",
                                       "directory": "partitioned"}


class TestQueries:
    def test_filters(self, tmp_path, pinned_env):
        path = tmp_path / "l.jsonl"
        _, sweep = _populate(path)
        records = load_ledger(str(path))
        assert len(filter_records(records, kind="cell")) == 2
        assert len(filter_records(records, kind="cell",
                                  status="failed")) == 1
        assert len(filter_records(records, system="press")) == 1
        assert len(filter_records(records, workload="rutgers")) == 2
        cells = filter_records(records, parent=sweep["run_id"])
        assert [c["cell_index"] for c in cells] == [0, 1]
        assert filter_records(records, kind="chaos") == []

    def test_latest_sweep(self, tmp_path, pinned_env):
        path = tmp_path / "l.jsonl"
        ledger, first = _populate(path)
        second = ledger.append("sweep", figure="fig2", cells=0, workers=1)
        records = load_ledger(str(path))
        assert latest_sweep(records)["run_id"] == second["run_id"]
        assert latest_sweep([]) is None

    def test_find_record_prefix(self):
        records = [{"run_id": "aaa1"}, {"run_id": "aaa2"},
                   {"run_id": "bbb3"}]
        assert find_record(records, "bbb")["run_id"] == "bbb3"
        assert find_record(records, "zzz") is None
        with pytest.raises(ValueError, match="ambiguous"):
            find_record(records, "aaa")


class TestOverheadProbe:
    def test_shape_and_sanity(self):
        probe = measure_observability_overhead(num_events=300)
        assert probe["events"] == 300.0
        assert probe["events_per_s_tracer_on"] > 0
        assert probe["events_per_s_tracer_off"] > 0
        assert probe["overhead_frac"] >= 0.0

    def test_rejects_degenerate_event_count(self):
        with pytest.raises(ValueError):
            measure_observability_overhead(num_events=0)


class TestCli:
    def test_list_table_and_filters(self, tmp_path, pinned_env, capsys):
        path = tmp_path / "l.jsonl"
        _populate(path)
        assert ledger_main(["list", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run_id" in out and "cc-kmc rutgers" in out
        assert ledger_main(["list", str(path), "--kind", "cell",
                            "--status", "failed"]) == 0
        out = capsys.readouterr().out
        assert "cc-gms" in out and "press" not in out

    def test_list_json(self, tmp_path, pinned_env, capsys):
        path = tmp_path / "l.jsonl"
        _populate(path)
        assert ledger_main(["list", str(path), "--json",
                            "--kind", "sweep"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert len(docs) == 1 and docs[0]["kind"] == "sweep"

    def test_list_no_match_and_missing_file(self, tmp_path, pinned_env,
                                            capsys):
        path = tmp_path / "l.jsonl"
        _populate(path)
        assert ledger_main(["list", str(path), "--system", "nope"]) == 0
        assert "no matching records" in capsys.readouterr().out
        assert ledger_main(["list", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_show_joins_artifacts(self, tmp_path, pinned_env, capsys):
        bench_path = tmp_path / "BENCH_fig2.json"
        rec = wrap_result("fig2", {"raw": True}, seed=0,
                          params={"scale": 0.02})
        rec["metrics"] = {"m": 1.0}
        dump_record(rec, bench_path)
        attr_path = tmp_path / "attr.json"
        attr_path.write_text(json.dumps(as_report("attribution", {
            "requests": 42, "mean_response_ms": 5.5,
            "mean_residual_ms": 0.5, "phase_means_ms": {"disk.queue": 5.0},
            "by_class": {},
            "binding_resource": {"resource": "disk", "utilization": 0.9},
        })))
        path = tmp_path / "l.jsonl"
        ledger = Ledger(str(path), clock=fake_clock())
        run = ledger.append("run", system="cc-kmc", artifacts={
            "bench": str(bench_path),
            "attribution": str(attr_path),
            "trace": str(tmp_path / "gone.jsonl"),
        })
        assert ledger_main(["show", str(path), run["run_id"][:6]]) == 0
        out = capsys.readouterr().out
        assert f'"run_id": "{run["run_id"]}"' in out
        assert "bench record 'fig2': 1 metrics" in out
        assert "attribution: 42 requests" in out and "binding disk" in out
        assert "(missing)" in out  # the dangling trace path

    def test_show_unknown_id(self, tmp_path, pinned_env, capsys):
        path = tmp_path / "l.jsonl"
        _populate(path)
        assert ledger_main(["show", str(path), "ffffffff"]) == 1
        assert "no record" in capsys.readouterr().err
