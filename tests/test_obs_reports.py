"""Edge-case tests for the text report renderers.

``render_timeseries`` / ``sparkline`` get the degenerate inputs a real
run can hand them — an empty trace, a single window, a series that never
leaves zero — plus the cache report over minimal and full snapshots.
"""

from repro.experiments.charts import sparkline
from repro.obs.reports import render_cache_report, render_timeseries
from repro.obs.timeseries import build_timeseries


def _window(t_ms=0.0, rps=0.0, util=0.0, depth=0.0, warm=True):
    return {
        "t_ms": t_ms,
        "throughput_rps": rps,
        "by_class": {},
        "utilization": {r: util for r in ("cpu", "nic", "bus", "disk")},
        "queue_depth": {r: depth for r in ("cpu", "nic", "bus", "disk")},
        "warm": warm,
    }


class TestSparkline:
    def test_empty_series_renders_empty(self):
        assert sparkline([]) == ""

    def test_all_zero_series_renders_blanks(self):
        assert sparkline([0.0, 0.0, 0.0]) == "   "

    def test_single_value(self):
        out = sparkline([5.0])
        assert len(out) == 1 and out != " "

    def test_tiny_positive_values_are_visible(self):
        # A nonzero value must never be painted as blank.
        out = sparkline([0.001, 1000.0])
        assert out[0] != " "

    def test_hi_fixes_the_scale(self):
        # At hi=1.0 a 0.5 sits mid-scale instead of topping out.
        assert sparkline([0.5], hi=1.0) != sparkline([0.5])

    def test_negative_hi_degrades_to_blanks(self):
        assert sparkline([1.0, 2.0], hi=0.0) == "  "


class TestRenderTimeseries:
    def test_empty_trace(self):
        ts = build_timeseries([])
        assert render_timeseries(ts) == "no windows (empty trace)"

    def test_single_window(self):
        ts = {"window_ms": 10.0, "warm_start_ms": None,
              "windows": [_window(rps=100.0, util=0.5, depth=1.0)]}
        out = render_timeseries(ts)
        assert "throughput per 10.0 ms window" in out
        assert "peak 0.500" in out

    def test_all_zero_series(self):
        ts = {"window_ms": 10.0, "warm_start_ms": None,
              "windows": [_window(t_ms=i * 10.0) for i in range(3)]}
        out = render_timeseries(ts)
        assert "peak 0.000" in out  # utilization never moved

    def test_warm_flags_rendered_when_warm_start_known(self):
        ts = {"window_ms": 10.0, "warm_start_ms": 10.0,
              "windows": [_window(warm=False), _window(t_ms=10.0)]}
        out = render_timeseries(ts)
        assert "-W" in out and "measurement starts at 10.0 ms" in out


class TestRenderCacheReport:
    def test_empty_snapshot_renders_summary_only(self):
        out = render_cache_report({"totals": {}, "per_node": {},
                                   "hop_histogram": {}, "windows": [],
                                   "ledger": []})
        assert "cache behavior (end of run)" in out
        assert "evictions by reason" not in out
        assert "eviction ledger" not in out

    def test_full_snapshot_sections(self):
        snap = {
            "window_ms": 100.0,
            "totals": {
                "resident_copies": 2, "resident_kb": 8.0,
                "distinct_blocks": 1, "duplicate_copies": 1,
                "duplicate_kb": 4.0, "duplicate_share": 0.5,
                "master_evictions": 3, "nonmaster_evictions": 4,
                "violations": 2, "stale_lookups": 1, "forwards": 5,
                "forward_outcomes": {"installed": 5},
                "evictions_by_reason": {"drop": 7},
                "directory_entries": 1,
                "directory_masters_per_node": {"0": 1},
            },
            "per_node": {"0": {"masters": 1, "nonmasters": 1, "kb": 8.0}},
            "hop_histogram": {"1": 5},
            "windows": [
                {"t_ms": 0.0, "duplicate_share": 0.5,
                 "resident_kb_mean": 8.0, "master_evictions": 3.0,
                 "nonmaster_evictions": 4.0, "violations": 2.0,
                 "stale_lookups": 1.0, "forwards": 5.0},
            ],
            "ledger": [
                {"t_ms": 1.0, "node": 0, "key": "f:1", "master": True,
                 "nonmasters_held": 1, "reason": "forward", "dest": 2},
            ],
        }
        out = render_cache_report(snap)
        assert "master-evicted-while-replica-held" in out
        assert "evictions by reason" in out
        assert "forward outcomes" in out
        assert "per-node replica census" in out
        assert "forwarding-hop histogram" in out
        assert "per-window series" in out
        assert "-> node 2" in out and "replicas held: 1" in out

    def test_ledger_tail_truncates(self):
        ledger = [
            {"t_ms": float(i), "node": 0, "key": f"b{i}", "master": False,
             "nonmasters_held": 0, "reason": "drop"}
            for i in range(30)
        ]
        out = render_cache_report(
            {"totals": {}, "per_node": {}, "hop_histogram": {},
             "windows": [], "ledger": ledger},
            ledger_tail=5,
        )
        assert "last 5 of 30 kept" in out
        assert "b29" in out and "b10" not in out
