"""Tests for windowed SLO evaluation and alerting (repro.obs.slo)."""

import json

import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.obs import Observability
from repro.obs.export import to_chrome_trace
from repro.obs.schema import OUTPUT_SCHEMA_VERSION
from repro.obs.slo import ALERT_SPAN, SloEvaluator, SloSpec
from repro.obs.tracing import Tracer
from repro.sim.faults import FaultPlan
from repro.traces import datasets


class TestSloSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="window_ms"):
            SloSpec(window_ms=0.0, p95_ms=1.0)
        with pytest.raises(ValueError, match="p95_ms"):
            SloSpec(p95_ms=-1.0)
        with pytest.raises(ValueError, match="availability"):
            SloSpec(availability=1.5)
        with pytest.raises(ValueError, match="burn_rate"):
            SloSpec(p95_ms=1.0, burn_rate_threshold=2.0)  # no availability
        with pytest.raises(ValueError, match="no objectives"):
            SloSpec()

    def test_round_trip(self, tmp_path):
        spec = SloSpec(window_ms=250.0, p95_ms=40.0, p99_ms=80.0,
                       availability=0.99, burn_rate_threshold=2.0,
                       good_latency_ms=80.0)
        assert SloSpec.from_dict(spec.to_dict()) == spec
        path = tmp_path / "slo.json"
        spec.dump(path)
        assert SloSpec.load(path) == spec

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            SloSpec.from_dict({"window_ms": 100.0, "p95_ms": 1.0})

    def test_dict_shape_is_grouped(self):
        doc = SloSpec(p95_ms=40.0, availability=0.99,
                      burn_rate_threshold=2.0).to_dict()
        assert doc == {
            "window_ms": 1000.0,
            "latency": {"p95_ms": 40.0},
            "availability": 0.99,
            "burn_rate": {"threshold": 2.0},
        }


class TestSloEvaluator:
    def test_latency_alerts_per_window(self):
        ev = SloEvaluator(SloSpec(window_ms=100.0, p95_ms=10.0))
        for i in range(20):  # window 0: all fast
            ev.observe(i * 5.0, 1.0, False)
        for i in range(20):  # window 1: all slow
            ev.observe(100.0 + i * 4.0, 50.0, False)
        report = ev.finalize()
        assert report["kind"] == "slo"
        assert report["schema_version"] == OUTPUT_SCHEMA_VERSION
        assert len(report["windows"]) == 2
        w0, w1 = report["windows"]
        assert w0["alerts"] == []
        assert w1["alerts"] == ["latency.p95"]
        assert w0["p95_ms"] == 1.0 and w1["p95_ms"] == 50.0
        assert report["totals"]["alert_count"] == 1
        assert report["totals"]["windows_breached"] == 1

    def test_availability_and_burn_rate(self):
        spec = SloSpec(window_ms=100.0, availability=0.9,
                       burn_rate_threshold=2.0, good_latency_ms=10.0)
        ev = SloEvaluator(spec)
        # Window 0: 10 requests, 3 failed -> availability 0.7 < 0.9;
        # bad fraction 0.3 / budget 0.1 = burn rate 3.0 >= 2.0.
        for i in range(10):
            ev.observe(i * 10.0, 1.0, i < 3)
        report = ev.finalize()
        w = report["windows"][0]
        assert w["availability"] == pytest.approx(0.7)
        assert w["burn_rate"] == pytest.approx(3.0)
        assert w["alerts"] == ["availability", "burn_rate"]
        assert report["totals"]["availability"] == pytest.approx(0.7)
        assert report["totals"]["max_burn_rate"] == pytest.approx(3.0)

    def test_slow_requests_burn_budget_without_failing(self):
        spec = SloSpec(window_ms=100.0, availability=0.9,
                       burn_rate_threshold=2.0, good_latency_ms=10.0)
        ev = SloEvaluator(spec)
        for i in range(10):
            ev.observe(i * 10.0, 50.0, False)  # slow but successful
        report = ev.finalize()
        w = report["windows"][0]
        assert w["availability"] == 1.0
        assert w["alerts"] == ["burn_rate"]
        assert w["burn_rate"] == pytest.approx(10.0)

    def test_empty_windows_are_skipped_quietly(self):
        ev = SloEvaluator(SloSpec(window_ms=10.0, p95_ms=1.0))
        ev.observe(5.0, 0.5, False)
        ev.observe(95.0, 0.5, False)  # windows 1..8 are empty
        report = ev.finalize()
        assert len(report["windows"]) == 10
        empty = [w for w in report["windows"] if w["requests"] == 0]
        assert len(empty) == 8
        assert all(not w["alerts"] for w in empty)
        assert report["totals"]["alert_count"] == 0

    def test_alerts_flow_through_tracer(self):
        tracer = Tracer()

        class _Clock:
            now = 123.0
        tracer.attach(_Clock())
        ev = SloEvaluator(SloSpec(window_ms=100.0, p95_ms=1.0),
                          tracer=tracer)
        for i in range(5):
            ev.observe(i * 20.0, 10.0, False)
        ev.finalize()
        alerts = [r for r in tracer.records if r["name"] == ALERT_SPAN]
        assert len(alerts) == 1
        attrs = alerts[0]["attrs"]
        assert attrs["kind"] == "latency.p95"
        assert attrs["window"] == 0
        assert attrs["observed"] == 10.0 and attrs["target"] == 1.0

    def test_observe_after_finalize_raises(self):
        ev = SloEvaluator(SloSpec(p95_ms=1.0))
        ev.observe(1.0, 0.5, False)
        ev.finalize()
        with pytest.raises(RuntimeError):
            ev.observe(2.0, 0.5, False)


def _chaos_slo_run():
    """A chaos run with a tight SLO: returns (obs, report)."""
    spec = SloSpec(window_ms=100.0, p95_ms=5.0, availability=0.999,
                   burn_rate_threshold=2.0, good_latency_ms=20.0)
    trace = datasets.scaled("rutgers", 0.005, num_requests=300)
    cfg = ExperimentConfig(
        system="cc-kmc",
        trace=trace,
        num_nodes=4,
        mem_mb_per_node=0.25,
        num_clients=8,
        seed=0,
        faults=FaultPlan.random(1, 2000.0, 4, crashes_per_node=2.0,
                                link_drops=1, disk_stalls=1),
    )
    obs = Observability(trace=True, slo=spec)
    run_experiment(cfg, obs=obs)
    report = obs.slo.finalize()
    return obs, report


class TestChaosSloDeterminism:
    @pytest.fixture(scope="class")
    def chaos_runs(self):
        return _chaos_slo_run(), _chaos_slo_run()

    def test_chaos_run_fires_alerts(self, chaos_runs):
        (_, report), _ = chaos_runs
        assert report["totals"]["alert_count"] >= 1
        kinds = {a["kind"] for a in report["alerts"]}
        assert kinds  # at least one objective breached

    def test_alerts_are_replay_identical(self, chaos_runs):
        (obs1, rep1), (obs2, rep2) = chaos_runs
        assert rep1["alerts"] == rep2["alerts"]
        assert rep1["windows"] == rep2["windows"]
        # The whole trace — alert spans included — is byte-identical.
        assert obs1.tracer.digest() == obs2.tracer.digest()

    def test_alerts_and_faults_in_trace_and_chrome_export(self, chaos_runs):
        """Satellite: chaos run -> export; every fault and alert span
        present in the Chrome trace, unfinished spans well-formed."""
        (obs, report), _ = chaos_runs
        records = [json.loads(line)
                   for line in obs.tracer.to_jsonl().splitlines()]
        faults = [r for r in records if r["name"] == "fault"]
        alerts = [r for r in records if r["name"] == ALERT_SPAN]
        assert faults and alerts
        assert len(alerts) == report["totals"]["alert_count"]

        doc = to_chrome_trace(records)
        events = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        fault_events = [e for e in events if e["name"] == "fault"]
        alert_events = [e for e in events if e["name"] == ALERT_SPAN]
        assert len(fault_events) == len(faults)
        assert len(alert_events) == len(alerts)
        # Fault/alert points share the "events" lane within a process.
        by_name = {}
        for ev in doc["traceEvents"]:
            if ev["ph"] == "M" and ev["name"] == "thread_name":
                by_name.setdefault(ev["args"]["name"], set()).add(ev["tid"])
        assert len(by_name["events"]) == 1
        events_tid = next(iter(by_name["events"]))
        assert all(e["tid"] == events_tid
                   for e in fault_events + alert_events)
        # Crash-orphaned requests: unfinished spans exported as flagged
        # instants, never dropped.
        unfinished = [e for e in events if e["args"].get("unfinished")]
        for ev in unfinished:
            assert ev["ph"] == "i" and ev["s"] == "t"
            assert "dur" not in ev
        assert len(events) == len(records)
