"""Package-level surface tests: imports, exports, docstrings."""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.sim",
    "repro.cluster",
    "repro.cache",
    "repro.core",
    "repro.press",
    "repro.web",
    "repro.traces",
    "repro.analytic",
    "repro.experiments",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_imports(name):
    mod = importlib.import_module(name)
    assert mod.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(name)
    for symbol in getattr(mod, "__all__", []):
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol}"


def test_version():
    import repro

    assert repro.__version__


def test_public_classes_have_docstrings():
    from repro.cache import AgedLRU, BlockCache, FileLayout, GlobalDirectory
    from repro.cluster import Cluster, Disk, Node
    from repro.core import CoopCacheLayer, CoopCacheService
    from repro.press import FileCache, PressServer
    from repro.sim import ServiceCenter, Simulator
    from repro.web import ClosedLoopDriver, CoopCacheWebServer

    for cls in (AgedLRU, BlockCache, FileLayout, GlobalDirectory, Cluster,
                Disk, Node, CoopCacheLayer, CoopCacheService, FileCache,
                PressServer, ServiceCenter, Simulator, ClosedLoopDriver,
                CoopCacheWebServer):
        assert cls.__doc__, f"{cls.__name__} lacks a docstring"
        for name, member in vars(cls).items():
            if name.startswith("_") or not callable(member):
                continue
            assert getattr(member, "__doc__", None), (
                f"{cls.__name__}.{name} lacks a docstring"
            )
