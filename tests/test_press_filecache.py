"""Unit tests for the PRESS whole-file cache and replica directory."""

import pytest

from repro.press import FileCache, ReplicaDirectory


def make(capacity_kb=100.0, node_id=0, directory=None):
    d = directory or ReplicaDirectory()
    return FileCache(node_id, capacity_kb, d), d


class TestReplicaDirectory:
    def test_empty(self):
        d = ReplicaDirectory()
        assert d.holders(1) == frozenset()
        assert d.copies(1) == 0

    def test_add_remove(self):
        d = ReplicaDirectory()
        d.add(5, 0)
        d.add(5, 2)
        assert d.holders(5) == {0, 2}
        assert d.copies(5) == 2
        d.remove(5, 0)
        assert d.holders(5) == {2}
        d.remove(5, 2)
        assert d.copies(5) == 0

    def test_remove_missing_raises(self):
        d = ReplicaDirectory()
        with pytest.raises(KeyError):
            d.remove(1, 0)

    def test_cached_files(self):
        d = ReplicaDirectory()
        d.add(1, 0)
        d.add(2, 1)
        assert set(d.cached_files()) == {1, 2}


class TestFileCache:
    def test_insert_and_contains(self):
        c, d = make()
        c.insert(1, 30.0)
        assert 1 in c and len(c) == 1
        assert c.used_kb == 30.0
        assert d.holders(1) == {0}

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            FileCache(0, 0.0, ReplicaDirectory())

    def test_duplicate_insert_raises(self):
        c, _ = make()
        c.insert(1, 10.0)
        with pytest.raises(KeyError):
            c.insert(1, 10.0)

    def test_oversized_file_rejected(self):
        c, _ = make(capacity_kb=50.0)
        assert not c.fits(60.0)
        with pytest.raises(ValueError):
            c.insert(1, 60.0)

    def test_lru_eviction_order(self):
        c, _ = make(capacity_kb=100.0)
        c.insert(1, 40.0)
        c.insert(2, 40.0)
        evicted = c.insert(3, 40.0)  # needs 20 KB -> evict oldest (1)
        assert evicted == [1]
        assert 1 not in c and 2 in c and 3 in c

    def test_touch_protects_from_eviction(self):
        c, _ = make(capacity_kb=100.0)
        c.insert(1, 40.0)
        c.insert(2, 40.0)
        c.touch(1)
        evicted = c.insert(3, 40.0)
        assert evicted == [2]

    def test_multiple_evictions_for_big_insert(self):
        c, _ = make(capacity_kb=100.0)
        c.insert(1, 30.0)
        c.insert(2, 30.0)
        c.insert(3, 30.0)
        evicted = c.insert(4, 90.0)
        assert evicted == [1, 2, 3]
        assert c.used_kb == 90.0

    def test_dereplication_prefers_replicated_files(self):
        d = ReplicaDirectory()
        a, _ = make(capacity_kb=100.0, node_id=0, directory=d)
        b, _ = make(capacity_kb=100.0, node_id=1, directory=d)
        a.insert(1, 50.0)       # file 1 only at node 0 (last copy)
        a.insert(2, 50.0)       # file 2 at node 0...
        b.insert(2, 50.0)       # ...and node 1 (replicated)
        # Node 0 must evict: file 1 is older, but file 2 has another copy.
        evicted = a.insert(3, 50.0)
        assert evicted == [2]
        assert 1 in a  # last copy kept
        assert d.copies(2) == 1  # still alive at node 1

    def test_last_copy_evicted_when_no_alternative(self):
        c, d = make(capacity_kb=100.0)
        c.insert(1, 50.0)
        c.insert(2, 50.0)
        evicted = c.insert(3, 50.0)  # both are last copies -> plain LRU
        assert evicted == [1]
        assert d.copies(1) == 0

    def test_directory_synced_on_eviction(self):
        c, d = make(capacity_kb=50.0)
        c.insert(1, 50.0)
        assert d.holders(1) == {0}
        c.insert(2, 50.0)  # evicts file 1
        assert d.holders(1) == frozenset()
        assert d.holders(2) == {0}

    def test_drop_explicit(self):
        c, d = make()
        c.insert(1, 10.0)
        c.drop(1)
        assert 1 not in c and c.used_kb == 0.0
        assert d.copies(1) == 0
        with pytest.raises(KeyError):
            c.drop(1)

    def test_free_kb(self):
        c, _ = make(capacity_kb=100.0)
        c.insert(1, 30.0)
        assert c.free_kb == pytest.approx(70.0)

    def test_lru_order_introspection(self):
        c, _ = make(capacity_kb=100.0)
        c.insert(1, 10.0)
        c.insert(2, 10.0)
        c.touch(1)
        assert c.lru_order() == [2, 1]

    def test_eviction_from_empty_raises(self):
        c, _ = make(capacity_kb=10.0)
        with pytest.raises(KeyError):
            c._select_victim()
