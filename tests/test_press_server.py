"""Behavioural tests for the PRESS baseline server."""

import numpy as np
import pytest

from repro.cache.block import FileLayout
from repro.cluster import Cluster
from repro.params import DEFAULT_PARAMS
from repro.press import PressServer
from repro.sim import Simulator
from repro.traces import Trace, TraceSpec
from repro.web import ClosedLoopDriver


def build(num_nodes=4, capacity_kb=64.0, sizes=(16.0, 16.0, 16.0, 16.0),
          params=DEFAULT_PARAMS, **kw):
    sim = Simulator()
    cluster = Cluster(sim, params, num_nodes)
    layout = FileLayout(list(sizes), params)
    server = PressServer(cluster, layout, capacity_kb=capacity_kb, **kw)
    return sim, cluster, server


def serve_seq(sim, cluster, server, pairs):
    def driver():
        for node_id, file_id in pairs:
            yield sim.process(server.handle(cluster.nodes[node_id], file_id))

    sim.process(driver())
    sim.run()


class TestDispatch:
    def test_cold_miss_reads_disk_and_adopts(self):
        sim, cluster, server = build()
        serve_seq(sim, cluster, server, [(0, 0)])
        assert server.counters.get("disk_read") == 2  # 16 KB = 2 blocks
        assert server.directory.copies(0) == 1

    def test_second_request_hits_memory(self):
        sim, cluster, server = build()
        serve_seq(sim, cluster, server, [(0, 0), (0, 0)])
        assert server.counters.get("local_hit") == 2
        assert server.counters.get("disk_read") == 2

    def test_content_aware_forwarding(self):
        sim, cluster, server = build()
        serve_seq(sim, cluster, server, [(0, 0), (1, 0)])
        # Node 1's request for file 0 forwarded to its caching node.
        assert server.counters.get("remote_hit") == 2
        assert server.counters.get("forwarded_requests") == 1
        # Crucially: the file is NOT duplicated by a plain remote hit.
        assert server.directory.copies(0) == 1

    def test_cold_miss_goes_to_least_loaded(self):
        from repro.cluster import DiskRequest

        sim, cluster, server = build()
        # Load node 0's disk so it is visibly busy at dispatch time (the
        # CPU cannot be used here: the request's own parse would simply
        # queue behind the load and see an idle node afterwards).
        cluster.nodes[0].disk.submit(DiskRequest(3, 0, 0, 1, 4000.0))
        serve_seq(sim, cluster, server, [(0, 0)])
        holder = next(iter(server.directory.holders(0)))
        assert holder != 0

    def test_uncacheable_file_served_but_not_cached(self):
        sim, cluster, server = build(capacity_kb=8.0, sizes=(100.0,))
        serve_seq(sim, cluster, server, [(0, 0)])
        assert server.counters.get("uncacheable") == 1
        assert server.directory.copies(0) == 0

    def test_dereplication_keeps_last_copy(self):
        # Node cache fits 2 files; third forces LRU eviction of last
        # copies (allowed only when nothing is replicated).
        sim, cluster, server = build(num_nodes=1, capacity_kb=32.0)
        serve_seq(sim, cluster, server, [(0, 0), (0, 1), (0, 2)])
        assert server.directory.copies(0) == 0  # evicted (LRU)
        assert server.directory.copies(1) == 1
        assert server.directory.copies(2) == 1


class TestReplication:
    def test_overload_triggers_replication(self):
        sim, cluster, server = build(replicate_threshold=1,
                                     replicate_headroom=0)
        # Make node 0 the holder, then hammer it while it is loaded.
        serve_seq(sim, cluster, server, [(0, 0)])

        from repro.cluster import DiskRequest

        def hammer():
            # Disk backlog keeps node 0's load >= 1 through the serve.
            cluster.nodes[0].disk.submit(DiskRequest(3, 0, 0, 1, 4000.0))
            yield sim.process(server.handle(cluster.nodes[0], 0))

        sim.process(hammer())
        sim.run()
        assert server.counters.get("replications") >= 1
        assert server.directory.copies(0) >= 2

    def test_no_replication_when_threshold_high(self):
        sim, cluster, server = build(replicate_threshold=1000)
        serve_seq(sim, cluster, server, [(0, 0), (1, 0), (2, 0), (3, 0)])
        assert server.counters.get("replications") == 0

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            build(replicate_threshold=0)


class TestTcpHandoff:
    def test_handoff_faster_than_relay(self):
        def run(handoff):
            params = DEFAULT_PARAMS.with_overrides(press_tcp_handoff=handoff)
            sim, cluster, server = build(params=params)
            serve_seq(sim, cluster, server, [(0, 0), (1, 0)])
            return sim.now

        assert run(True) < run(False)


class TestHitRates:
    def test_block_weighted(self):
        sim, cluster, server = build(sizes=(16.0, 80.0, 16.0, 16.0),
                                     capacity_kb=128.0)
        serve_seq(sim, cluster, server, [(0, 1), (0, 1)])
        # 80 KB file = 10 blocks: 10 disk + 10 local.
        hr = server.hit_rates()
        assert hr["disk"] == pytest.approx(0.5)
        assert hr["local"] == pytest.approx(0.5)

    def test_empty(self):
        _, _, server = build()
        assert server.hit_rates()["total"] == 0.0

    def test_reset_stats(self):
        sim, cluster, server = build()
        serve_seq(sim, cluster, server, [(0, 0)])
        server.reset_stats()
        assert server.counters.as_dict() == {}
        # Cache contents survive the reset.
        assert server.directory.copies(0) == 1

    def test_resident_files(self):
        sim, cluster, server = build()
        serve_seq(sim, cluster, server, [(0, 0), (1, 1)])
        assert server.resident_files() == 2


class TestWithDriver:
    def make_trace(self, n_files=12, n_requests=400, seed=5):
        rng = np.random.default_rng(seed)
        return Trace(
            spec=TraceSpec("t", n_files, n_requests, 16.0),
            sizes_kb=np.full(n_files, 16.0),
            requests=rng.integers(0, n_files, size=n_requests),
        )

    def test_full_run_produces_sane_stats(self):
        trace = self.make_trace()
        sim = Simulator()
        cluster = Cluster(sim, DEFAULT_PARAMS, 4)
        layout = FileLayout(trace.sizes_kb, DEFAULT_PARAMS)
        server = PressServer(cluster, layout, capacity_kb=64.0)
        driver = ClosedLoopDriver(sim, cluster, server, trace, num_clients=8)
        result = driver.run()
        assert result.throughput_rps > 0
        assert result.mean_response_ms > 0
        assert result.measured_requests > 0
        hr = server.hit_rates()
        assert 0.0 <= hr["total"] <= 1.0

    def test_coalescing_counts_separately(self):
        trace = self.make_trace(n_files=2, n_requests=100)
        sim = Simulator()
        cluster = Cluster(sim, DEFAULT_PARAMS, 4)
        layout = FileLayout(trace.sizes_kb, DEFAULT_PARAMS)
        server = PressServer(cluster, layout, capacity_kb=64.0)
        driver = ClosedLoopDriver(
            sim, cluster, server, trace, num_clients=16, warmup_frac=0.0
        )
        driver.run()
        c = server.counters
        # Concurrent cold requests for the same file joined one read:
        # data was read from each disk at most once per adoption.
        total = (c.get("local_hit") + c.get("remote_hit")
                 + c.get("disk_read") + c.get("coalesced"))
        assert total == 200  # 100 requests x 2 blocks
