"""Property-based test (hypothesis): attribution conservation.

For any profiled run — any system, cluster size, memory size, client
count and seed — the analyzer's per-request phase decomposition must
account for the *entire* measured response time of *every* request.  If
a new protocol wait is added without a phase span (or a phase span is
misattributed), the unexplained residual stops being ~0 and this test
finds a counterexample configuration.
"""

from hypothesis import given, settings, strategies as st

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.obs import Observability
from repro.obs.analyze import build_trees, decompose_request, request_roots
from repro.traces import datasets

#: One small workload shared by every example (generation is seeded by
#: the spec, so this is deterministic and cheap to reuse).
WORKLOAD = datasets.scaled("rutgers", 0.005, num_requests=120)

configs = st.fixed_dictionaries(
    {
        "system": st.sampled_from(["cc-basic", "cc-sched", "cc-kmc", "press"]),
        "num_nodes": st.integers(min_value=2, max_value=5),
        "num_clients": st.integers(min_value=1, max_value=12),
        "mem_mb_per_node": st.sampled_from([0.25, 0.5, 1.0]),
        "seed": st.integers(min_value=0, max_value=10_000),
    }
)


@given(config=configs)
@settings(max_examples=12, deadline=None)
def test_decomposition_conserves_response_time(config):
    obs = Observability(profile=True)
    run_experiment(
        ExperimentConfig(trace=WORKLOAD, warmup_frac=0.25, **config), obs=obs
    )
    roots, _ = build_trees(obs.tracer.records)
    reqs = request_roots(roots)
    assert len(reqs) == 120
    for root in reqs:
        profile = decompose_request(root)
        tolerance = max(1e-6, 1e-9 * profile.dur)
        assert abs(profile.residual) < tolerance, (
            f"{config}: trace {profile.trace_id} ({profile.cls}) left "
            f"{profile.residual:.9f} ms of {profile.dur:.4f} ms unattributed"
        )
        assert all(v >= -1e-9 for v in profile.phases.values())
