"""Reference-model property tests for the disk and the PRESS file cache.

Each test replays a random operation sequence through the real component
and through a deliberately naive reference implementation, asserting
agreement — the hypothesis-driven analogue of the AgedLRU model test.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import FIFO, Disk, DiskRequest
from repro.params import DEFAULT_PARAMS
from repro.press import FileCache, ReplicaDirectory
from repro.sim import Simulator


class TestDiskSeekAccountingModel:
    """Under FIFO, seek accounting must match a simple positional model."""

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),   # file id
                st.integers(min_value=0, max_value=15),  # block index
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_fifo_matches_reference_head_model(self, accesses):
        sim = Simulator()
        disk = Disk(sim, "d", DEFAULT_PARAMS, discipline=FIFO)
        bpe = DEFAULT_PARAMS.extent_kb // DEFAULT_PARAMS.block_kb
        for f, blk in accesses:
            disk.submit(DiskRequest(f, blk // bpe, blk, 1, 8.0))
        sim.run()

        # Reference: a head position (file, extent, next_block); an access
        # is contiguous iff it starts exactly at the head position.
        head = None
        exp_seeks = exp_contig = 0
        for f, blk in accesses:
            pos = (f, blk // bpe, blk)
            if head == pos:
                exp_contig += 1
            else:
                exp_seeks += 1
            head = (f, blk // bpe, blk + 1)

        assert disk.seeks == exp_seeks
        assert disk.contiguous_hits == exp_contig
        assert disk.completed == len(accesses)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=15),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_total_time_decomposes_into_seeks_and_transfer(self, accesses):
        sim = Simulator()
        disk = Disk(sim, "d", DEFAULT_PARAMS, discipline=FIFO)
        bpe = DEFAULT_PARAMS.extent_kb // DEFAULT_PARAMS.block_kb
        for f, blk in accesses:
            disk.submit(DiskRequest(f, blk // bpe, blk, 1, 8.0))
        sim.run()
        d = DEFAULT_PARAMS.disk
        expected = (
            disk.seeks * (d.seek_ms + d.metadata_seek_ms)
            + len(accesses) * 8.0 * d.transfer_per_kb_ms
        )
        # Busy time == service time (single server, work-conserving).
        assert disk.reads_kb == pytest.approx(8.0 * len(accesses))
        assert sim.now == pytest.approx(expected, rel=1e-9)


class TestFileCacheModel:
    """FileCache vs a naive dict-based reference with the same policy."""

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "touch", "drop"]),
                st.integers(min_value=0, max_value=9),
                st.sampled_from([10.0, 25.0, 40.0]),
            ),
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_and_directory_invariants(self, ops):
        directory = ReplicaDirectory()
        caches = [FileCache(i, 100.0, directory) for i in range(2)]
        model = [dict(), dict()]  # node -> {file: size}

        for op, f, size in ops:
            node = f % 2
            cache, m = caches[node], model[node]
            if op == "insert" and f not in m:
                evicted = cache.insert(f, size)
                for ev in evicted:
                    del m[ev]
                m[f] = size
            elif op == "touch" and f in m:
                cache.touch(f)
            elif op == "drop" and f in m:
                cache.drop(f)
                del m[f]

            for n in range(2):
                # Used bytes match the model exactly.
                assert caches[n].used_kb == pytest.approx(
                    sum(model[n].values())
                )
                assert caches[n].used_kb <= caches[n].capacity_kb + 1e-9
                assert set(caches[n].lru_order()) == set(model[n])
            # Directory agrees with residency.
            for fid in range(10):
                holders = directory.holders(fid)
                expected = {n for n in range(2) if fid in model[n]}
                assert holders == expected

    def test_dereplication_preference_invariant(self):
        # Whenever an eviction happens while some resident file has a
        # copy elsewhere, the evicted file must be such a file.
        directory = ReplicaDirectory()
        a = FileCache(0, 100.0, directory)
        b = FileCache(1, 100.0, directory)
        a.insert(1, 40.0)
        a.insert(2, 40.0)
        b.insert(2, 40.0)  # file 2 replicated
        evicted = a.insert(3, 40.0)
        assert evicted == [2]
        # And when nothing is replicated, plain LRU applies.
        evicted = a.insert(4, 40.0)
        assert evicted and directory.copies(evicted[0]) == 0
