"""Tests for per-service-class response accounting (Figure 5 analysis)."""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, run_experiment
from repro.traces import Trace, TraceSpec


def make_trace(n_files=10, n_requests=300, seed=6):
    rng = np.random.default_rng(seed)
    reqs = (rng.random(n_requests) ** 2 * n_files).astype(int)
    return Trace(
        spec=TraceSpec("t", n_files, n_requests, 16.0),
        sizes_kb=np.full(n_files, 16.0),
        requests=np.clip(reqs, 0, n_files - 1),
    )


def run(system, **kw):
    return run_experiment(
        ExperimentConfig(
            system=system,
            trace=make_trace(),
            num_nodes=4,
            mem_mb_per_node=0.25,
            num_clients=8,
            **kw,
        )
    )


class TestResponseByClass:
    def test_cc_classes_present(self):
        res = run("cc-kmc")
        by_class = res.workload.response_by_class_ms
        assert set(by_class) <= {"local", "remote", "disk"}
        assert "local" in by_class  # hot files repeat
        assert all(v > 0 for v in by_class.values())

    def test_class_counts_sum_to_measured(self):
        res = run("cc-kmc")
        w = res.workload
        assert sum(w.requests_by_class.values()) == w.measured_requests

    def test_disk_requests_slower_than_local(self):
        res = run("cc-kmc")
        by_class = res.workload.response_by_class_ms
        if "disk" in by_class and "local" in by_class:
            assert by_class["disk"] > by_class["local"]

    def test_remote_between_local_and_disk(self):
        res = run("cc-kmc")
        by_class = res.workload.response_by_class_ms
        if {"local", "remote", "disk"} <= set(by_class):
            assert by_class["local"] < by_class["remote"] < by_class["disk"]

    def test_press_classes_present(self):
        res = run("press")
        by_class = res.workload.response_by_class_ms
        assert set(by_class) <= {"local", "remote", "disk", "coalesced"}
        assert sum(res.workload.requests_by_class.values()) == (
            res.workload.measured_requests
        )

    def test_mean_is_weighted_average_of_classes(self):
        res = run("cc-kmc")
        w = res.workload
        total = sum(
            w.response_by_class_ms[c] * w.requests_by_class[c]
            for c in w.response_by_class_ms
        )
        n = sum(w.requests_by_class.values())
        assert total / n == pytest.approx(w.mean_response_ms, rel=1e-9)
