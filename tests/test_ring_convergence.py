"""Statistical convergence: partitioned LRU approaches the single LRU.

The theoretical backbone of the partitioned directory (PAPERS.md:
asymptotic miss ratio of LRU with consistent hashing) — splitting one
LRU into per-node LRUs behind the hash ring costs a vanishing amount of
miss ratio as per-node capacity grows.  The fast test smoke-checks the
model at toy scale; the ``slow``-marked test (nightly, deselected from
tier-1 by the ``-m "not slow"`` addopts) runs the real statistical
check at fig_ring scale.  Everything is seeded: these are deterministic
computations over a pinned Zipf stream, so tolerance failures are code
changes, not sampling noise.
"""

import pytest

from repro.analytic.ring import (
    convergence_point,
    lru_miss_ratio,
    partitioned_miss_ratio,
    zipf_requests,
)


def test_zipf_stream_is_seeded_and_shaped():
    a = zipf_requests(500, 4000, theta=0.8, seed=0)
    b = zipf_requests(500, 4000, theta=0.8, seed=0)
    c = zipf_requests(500, 4000, theta=0.8, seed=1)
    assert (a == b).all()
    assert not (a == c).all()
    assert a.min() >= 0 and a.max() < 500
    # Zipf head-heaviness: the most popular decile draws well over its
    # uniform share.
    head = (a < 50).mean()
    assert head > 0.3


def test_single_lru_miss_ratio_monotone_in_capacity():
    reqs = zipf_requests(800, 6000, seed=0)
    misses = [lru_miss_ratio(reqs, cap) for cap in (8, 32, 128, 512)]
    assert misses == sorted(misses, reverse=True)
    assert 0.0 < misses[-1] < misses[0] <= 1.0


def test_partitioned_never_beats_single_lru_smoke():
    # Inclusion-style sanity at toy scale: the partitioned aggregate can
    # tie but not beat the single LRU of the same total capacity under
    # an i.i.d. stream (imbalance only hurts).
    reqs = zipf_requests(2000, 20_000, seed=0)
    for nodes, cap in ((4, 16), (8, 16), (16, 8)):
        point = convergence_point(reqs, nodes, cap, vnodes=32, seed=0)
        assert point["gap"] >= -1e-12, (nodes, cap, point)


def test_convergence_smoke_tiny():
    # Tiny-knob version of the slow statistical test: gap shrinks from
    # the smallest to the largest per-node capacity.
    reqs = zipf_requests(12_000, 40_000, seed=0)
    small = convergence_point(reqs, 16, 4, vnodes=64, seed=0)
    large = convergence_point(reqs, 16, 64, vnodes=64, seed=0)
    assert large["gap"] < small["gap"]
    assert large["gap"] < 0.01


@pytest.mark.slow
@pytest.mark.parametrize("nodes", [16, 64, 256])
def test_partitioned_miss_ratio_converges_to_single_lru(nodes):
    """fig_ring-scale statistical check, one panel per node count: the
    partitioned aggregate miss ratio lands within a shrinking tolerance
    of the single LRU as per-node capacity grows, and the gap is
    monotone decreasing across the capacity sweep."""
    reqs = zipf_requests(60_000, 150_000, theta=0.8, seed=0)
    gaps = []
    for cap in (4, 16, 64):
        point = convergence_point(reqs, nodes, cap, vnodes=64, seed=0)
        assert point["gap"] >= -1e-12
        gaps.append(point["gap"])
    assert gaps == sorted(gaps, reverse=True), gaps
    # Absolute tolerance at the largest capacity: within half a point of
    # miss ratio of the unpartitioned ideal, at every cluster size.
    assert gaps[-1] < 0.005, gaps
    # And an order-of-magnitude-style relative drop across the sweep.
    assert gaps[-1] < 0.75 * gaps[0], gaps


@pytest.mark.slow
def test_partitioned_miss_ratio_stable_across_ring_seeds():
    """The convergence claim is not an artifact of one lucky ring: at
    fig_ring scale the gap stays small under different placement
    seeds (same request stream)."""
    reqs = zipf_requests(60_000, 150_000, theta=0.8, seed=0)
    for ring_seed in (0, 1, 2):
        part = partitioned_miss_ratio(
            reqs, 64, 64, vnodes=64, seed=ring_seed
        )
        single = lru_miss_ratio(reqs, 64 * 64)
        assert part - single < 0.006, (ring_seed, part, single)
