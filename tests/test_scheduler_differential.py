"""Differential tests: CalendarScheduler versus the reference heap.

The determinism contract (DESIGN.md §17) says the two schedulers are
*observationally identical*: they dequeue pending ``(time, seq, event)``
entries in exactly the same order, including timestamp ties (broken by
the monotonic sequence number) and zero-delay events scheduled from
within handlers.  These tests attack that claim three ways:

1. raw scheduler level — hypothesis drives both implementations with the
   same adversarial push/pop interleavings and asserts entry-for-entry
   equality, through grow and shrink resizes;
2. kernel level — random callback cascades (with heavy zero-delay /
   same-timestamp mass) fire in the same order under either scheduler;
3. pinned regressions — the same-timestamp-from-within-a-handler FIFO
   ordering that golden traces depend on (see ``Simulator._push``).

Full-system equivalence (byte-identical golden digests under
``REPRO_SCHEDULER=calendar``) lives in ``test_golden_trace.py``.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import (
    SCHEDULERS,
    CalendarScheduler,
    HeapScheduler,
    SimulationError,
    Simulator,
)

#: Delay grid with deliberate mass on repeated values so that timestamp
#: ties — the hard case for dequeue-order equality — are the common case,
#: plus a huge outlier that forces the calendar's year-gap fallback scan.
DELAYS = st.sampled_from(
    [0.0, 0.0, 0.0, 0.25, 0.25, 1.0, 1.0, 3.5, 17.0, 1000.0, 250_000.0]
)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), DELAYS),
        st.just(("pop",)),
        st.just(("peek",)),
    ),
    min_size=1,
    max_size=200,
)


# ---------------------------------------------------------------------------
# 1. Raw scheduler level
# ---------------------------------------------------------------------------
@given(ops=_OPS)
def test_pop_order_identical_under_interleaved_ops(ops):
    """Any interleaving of pushes and pops yields entry-for-entry equal
    dequeue streams from the heap and the calendar queue."""
    heap, cal = HeapScheduler(), CalendarScheduler()
    seq = 0
    now = 0.0  # last dequeued time: future pushes land at now + delay
    for op in ops:
        if op[0] == "push":
            seq += 1
            when = now + op[1]
            heap.push(when, seq, None)
            cal.push(when, seq, None)
        elif op[0] == "peek":
            # Peeks must be pure observers: interleaving them with the
            # pushes/pops below must not perturb the dequeue stream.
            assert heap.peek_time() == cal.peek_time()
        elif len(heap):
            assert len(heap) == len(cal)
            got_h, got_c = heap.pop(), cal.pop()
            assert got_h == got_c
            now = got_h[0]
    while len(heap):
        assert heap.pop() == cal.pop()
    assert len(cal) == 0
    with pytest.raises(IndexError):
        cal.pop()


def test_resize_churn_preserves_order():
    """Thousands of pushes force the calendar through grow resizes, the
    drain through shrink resizes — order must match the heap throughout."""
    rng = random.Random(0)
    heap, cal = HeapScheduler(), CalendarScheduler()
    now = 0.0
    seq = 0
    for seq in range(1, 5001):
        # Bursty gaps: mostly dense, occasionally a big jump, so the
        # resize width estimate sees non-uniform inter-event spacing.
        now += rng.choice([0.0, 0.0, 0.01, 0.5, 0.5, 40.0])
        heap.push(now, seq, None)
        cal.push(now, seq, None)
    assert cal._nbuckets > 8, "workload was meant to trigger a grow resize"
    drained = 0
    while len(heap):
        assert heap.pop() == cal.pop()
        drained += 1
    assert drained == 5000
    assert cal._nbuckets == 8, "full drain should shrink back to minimum"


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_peek_then_push_earlier_dequeues_in_order(scheduler):
    """Peeking must not commit scan state: a later push of an *earlier*
    time (legal — nothing has been popped yet) still dequeues first.
    Regression for the calendar queue's peek advancing _cur/_bucket_top
    past the bucket the earlier push would land in."""
    sched = SCHEDULERS[scheduler]()
    sched.push(100.0, 1, None)
    assert sched.peek_time() == 100.0
    assert sched.peek_time() == 100.0  # repeated peeks stay pure too
    sched.push(2.0, 2, None)
    assert sched.peek_time() == 2.0
    assert sched.pop()[:2] == (2.0, 2)
    assert sched.pop()[:2] == (100.0, 1)


def test_calendar_push_into_past_raises():
    """Pushing before the last popped time corrupts the bucket scan, so
    it must fail loudly — a SimulationError, not an -O-strippable
    assert."""
    cal = CalendarScheduler()
    cal.push(10.0, 1, None)
    cal.pop()
    with pytest.raises(SimulationError, match="push into the past"):
        cal.push(5.0, 2, None)


def test_year_gap_fallback_finds_global_minimum():
    """Entries more than a calendar year apart exercise the direct-min
    fallback; the popped order must still be strict (time, seq)."""
    cal = CalendarScheduler(nbuckets=8, width=1.0)
    # Same bucket (mod 8) at wildly different years, plus a tie.
    cal.push(0.5, 1, None)
    cal.push(8.5, 2, None)
    cal.push(800.5, 3, None)
    cal.push(800.5, 4, None)
    assert [cal.pop()[:2] for _ in range(4)] == [
        (0.5, 1), (8.5, 2), (800.5, 3), (800.5, 4)
    ]


# ---------------------------------------------------------------------------
# 2. Kernel level: random callback cascades
# ---------------------------------------------------------------------------
def _run_script(scheduler: str, script) -> list:
    """Fire a cascade: batch 0 is scheduled up front; the k-th event to
    fire schedules batch k (if any).  Returns the (time, id) firing log —
    the complete observable behavior of the run."""
    sim = Simulator(scheduler=scheduler)
    order: list[tuple[float, int]] = []
    ids = itertools.count()

    def fire(idx: int) -> None:
        order.append((sim.now, idx))
        k = len(order)
        if k < len(script):
            for delay in script[k]:
                sim.call_after(delay, fire, next(ids))

    for delay in script[0]:
        sim.call_after(delay, fire, next(ids))
    sim.run()
    return order


@settings(deadline=None)
@given(script=st.lists(st.lists(DELAYS, max_size=4), min_size=1, max_size=30))
def test_kernel_firing_order_identical(script):
    """Random cascades — including zero-delay children scheduled from
    inside handlers at tied timestamps — fire identically under both
    schedulers."""
    assert _run_script("heap", script) == _run_script("calendar", script)


# ---------------------------------------------------------------------------
# 3. Pinned tie-break regressions (Simulator._push contract)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_same_timestamp_from_handler_fires_fifo(scheduler):
    """Events scheduled *from within a handler* at the current timestamp
    fire after the already-pending same-time events, in schedule order.
    This pins the seq tie-break that golden digests rest on."""
    sim = Simulator(scheduler=scheduler)
    order = []

    def late(tag: str) -> None:
        order.append((sim.now, tag))

    def handler() -> None:
        order.append((sim.now, "handler"))
        sim.call_after(0.0, late, "h1")
        sim.call_at(sim.now, late, "h2")

    sim.call_after(5.0, handler)
    sim.call_after(5.0, late, "pre1")
    sim.call_after(5.0, late, "pre2")
    sim.run()
    assert order == [
        (5.0, "handler"), (5.0, "pre1"), (5.0, "pre2"),
        (5.0, "h1"), (5.0, "h2"),
    ]


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_zero_delay_self_reschedule_chain(scheduler):
    """A handler rescheduling itself with delay 0 runs strictly after
    each prior firing (seq keeps advancing), never starving or looping
    within one timestamp pop."""
    sim = Simulator(scheduler=scheduler)
    fired = []

    def tick(n: int) -> None:
        fired.append((sim.now, n))
        if n < 5:
            sim.call_after(0.0, tick, n + 1)

    sim.call_after(1.0, tick, 0)
    sim.run()
    assert fired == [(1.0, n) for n in range(6)]


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_run_until_then_schedule_earlier(scheduler):
    """run(until=...) peeks the queue every step; scheduling *after* it
    returns, earlier than the still-pending event, must fire in time
    order and never run the clock backwards.  Regression for the
    calendar peek committing scan state (reproduced as: run(until=5)
    then call_after(1) fired the t=100 callback first and sim.now
    jumped from 100 back to 6)."""
    sim = Simulator(scheduler=scheduler)
    order: list[tuple[float, str]] = []

    def fire(tag: str) -> None:
        order.append((sim.now, tag))

    sim.call_after(100.0, fire, "late")
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert order == []
    sim.call_after(1.0, fire, "early")
    sim.run()
    assert order == [(6.0, "early"), (100.0, "late")]
    assert sim.now == 100.0


def test_scheduler_selection():
    """Registry names, instances and the REPRO_SCHEDULER knob all select;
    unknown names fail loudly."""
    assert isinstance(Simulator(scheduler="heap").scheduler, HeapScheduler)
    assert isinstance(
        Simulator(scheduler="calendar").scheduler, CalendarScheduler
    )
    explicit = CalendarScheduler()
    assert Simulator(scheduler=explicit).scheduler is explicit
    with pytest.raises(SimulationError, match="unknown scheduler"):
        Simulator(scheduler="splay-tree")


def test_env_knob_selects_calendar(monkeypatch):
    monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
    assert isinstance(Simulator().scheduler, CalendarScheduler)
    monkeypatch.delenv("REPRO_SCHEDULER")
    assert isinstance(Simulator().scheduler, HeapScheduler)
