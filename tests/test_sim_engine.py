"""Unit tests for the discrete-event kernel (repro.sim.engine)."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    SimulationError,
    Simulator,
)


class TestSimulatorBasics:
    def test_initial_time_is_zero(self):
        assert Simulator().now == 0.0

    def test_timeout_advances_clock(self):
        sim = Simulator()
        sim.timeout(5.0)
        sim.run()
        assert sim.now == 5.0

    def test_timeout_value_delivered(self):
        sim = Simulator()
        got = []

        def proc():
            v = yield sim.timeout(1.0, "payload")
            got.append(v)

        sim.process(proc())
        sim.run()
        assert got == ["payload"]

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        for d in (3.0, 1.0, 2.0):
            sim.call_after(d, order.append, d)
        sim.run()
        assert order == [1.0, 2.0, 3.0]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.call_after(1.0, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_run_until_is_exclusive(self):
        sim = Simulator()
        fired = []
        sim.call_after(5.0, fired.append, "at5")
        sim.run(until=5.0)
        assert fired == []
        assert sim.now == 5.0
        sim.run()
        assert fired == ["at5"]

    def test_run_until_advances_clock_past_empty_calendar(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_max_events_budget(self):
        sim = Simulator()
        hits = []
        for i in range(5):
            sim.call_after(float(i + 1), hits.append, i)
        sim.run(max_events=2)
        assert hits == [0, 1]

    def test_run_stop_event(self):
        sim = Simulator()
        hits = []
        stop = sim.timeout(2.0)
        for i in range(5):
            sim.call_after(float(i + 1), hits.append, i)
        sim.run(stop=stop)
        # The stop timeout was scheduled first, so at t=2 it fires before
        # the t=2 callback; only the t=1 callback has run.
        assert hits == [0]

    def test_call_at_past_raises(self):
        sim = Simulator()
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_event_count_increments(self):
        sim = Simulator()
        for _ in range(4):
            sim.timeout(1.0)
        sim.run()
        assert sim.event_count == 4

    def test_peek_next_event_time(self):
        sim = Simulator()
        assert sim.peek() == float("inf")
        sim.timeout(3.0)
        assert sim.peek() == 3.0


class TestEvent:
    def test_succeed_delivers_value(self):
        sim = Simulator()
        ev = sim.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed(42)
        sim.run()
        assert seen == [42]

    def test_double_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_then_succeed_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(RuntimeError("x"))
        with pytest.raises(SimulationError):
            ev.succeed(1)

    def test_failed_event_throws_into_process(self):
        sim = Simulator()
        ev = sim.event()
        caught = []

        def proc():
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(proc())
        ev.fail(RuntimeError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_triggered_vs_processed(self):
        sim = Simulator()
        ev = sim.event()
        assert not ev.triggered and not ev.processed
        ev.succeed()
        assert ev.triggered and not ev.processed
        sim.run()
        assert ev.processed

    def test_succeed_with_delay(self):
        sim = Simulator()
        when = []
        ev = sim.event()
        ev.callbacks.append(lambda e: when.append(sim.now))
        ev.succeed(None, delay=7.5)
        sim.run()
        assert when == [7.5]


class TestProcess:
    def test_return_value_is_process_value(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            return "done"

        p = sim.process(proc())
        sim.run()
        assert p.value == "done"

    def test_process_waiting_on_process(self):
        sim = Simulator()
        log = []

        def inner():
            yield sim.timeout(2.0)
            return "inner-result"

        def outer():
            v = yield sim.process(inner())
            log.append((sim.now, v))

        sim.process(outer())
        sim.run()
        assert log == [(2.0, "inner-result")]

    def test_yield_already_processed_event(self):
        sim = Simulator()
        log = []
        ev = sim.event()
        ev.succeed("early")

        def late():
            yield sim.timeout(5.0)
            v = yield ev  # processed long ago
            log.append((sim.now, v))

        sim.process(late())
        sim.run()
        assert log == [(5.0, "early")]

    def test_yield_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_exception_in_process_fails_its_event(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise ValueError("model bug")

        p = sim.process(bad())
        sim.run()
        assert not p.ok
        assert isinstance(p.value, ValueError)

    def test_failure_propagates_to_waiter(self):
        sim = Simulator()
        caught = []

        def bad():
            yield sim.timeout(1.0)
            raise ValueError("model bug")

        def waiter():
            try:
                yield sim.process(bad())
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(waiter())
        sim.run()
        assert caught == ["model bug"]

    def test_immediate_return_process(self):
        sim = Simulator()

        def instant():
            return "x"
            yield  # pragma: no cover - makes it a generator

        p = sim.process(instant())
        sim.run()
        assert p.value == "x"

    def test_many_interleaved_processes_deterministic(self):
        def run_once():
            sim = Simulator()
            log = []

            def proc(i):
                yield sim.timeout(i % 3)
                log.append(i)
                yield sim.timeout((i * 7) % 5)
                log.append(-i)

            for i in range(20):
                sim.process(proc(i))
            sim.run()
            return log

        assert run_once() == run_once()


class TestCombinators:
    def test_allof_collects_in_argument_order(self):
        sim = Simulator()
        got = []

        def proc():
            vals = yield sim.all_of([sim.timeout(3, "slow"), sim.timeout(1, "fast")])
            got.append((sim.now, vals))

        sim.process(proc())
        sim.run()
        assert got == [(3.0, ["slow", "fast"])]

    def test_allof_empty_fires_immediately(self):
        sim = Simulator()
        got = []

        def proc():
            vals = yield sim.all_of([])
            got.append((sim.now, vals))

        sim.process(proc())
        sim.run()
        assert got == [(0.0, [])]

    def test_allof_failure_propagates(self):
        sim = Simulator()
        bad = sim.event()
        caught = []

        def proc():
            try:
                yield sim.all_of([sim.timeout(1), bad])
            except RuntimeError:
                caught.append(True)

        sim.process(proc())
        bad.fail(RuntimeError("child failed"))
        sim.run()
        assert caught == [True]

    def test_anyof_first_value_wins(self):
        sim = Simulator()
        got = []

        def proc():
            v = yield sim.any_of([sim.timeout(3, "slow"), sim.timeout(1, "fast")])
            got.append((sim.now, v))

        sim.process(proc())
        sim.run()
        assert got == [(1.0, "fast")]

    def test_anyof_empty_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.any_of([])

    def test_allof_is_event_subclass(self):
        sim = Simulator()
        assert isinstance(sim.all_of([sim.timeout(1)]), Event)
        assert isinstance(AllOf(sim, [sim.timeout(1)]), Event)
        assert isinstance(AnyOf(sim, [sim.timeout(1)]), Event)
