"""Unit tests for ServiceCenter (finite-queue resources)."""

import pytest

from repro.sim import QueueFullError, ServiceCenter, Simulator


def make(capacity=1, queue_limit=100, sim=None):
    sim = sim or Simulator()
    return sim, ServiceCenter(sim, "sc", capacity=capacity, queue_limit=queue_limit)


class TestServiceCenter:
    def test_single_job_completes_after_demand(self):
        sim, sc = make()
        done = sc.submit(4.0, value="job")
        sim.run()
        assert done.processed and done.value == "job"
        assert sim.now == 4.0

    def test_jobs_serialize_on_one_server(self):
        sim, sc = make(capacity=1)
        finish_times = []
        for i in range(3):
            sc.submit(2.0).callbacks.append(lambda e: finish_times.append(sim.now))
        sim.run()
        assert finish_times == [2.0, 4.0, 6.0]

    def test_jobs_parallel_on_multiple_servers(self):
        sim, sc = make(capacity=3)
        finish_times = []
        for _ in range(3):
            sc.submit(2.0).callbacks.append(lambda e: finish_times.append(sim.now))
        sim.run()
        assert finish_times == [2.0, 2.0, 2.0]

    def test_fifo_order_preserved(self):
        sim, sc = make(capacity=1)
        order = []
        for i in range(5):
            sc.submit(1.0, value=i).callbacks.append(
                lambda e: order.append(e.value)
            )
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_queue_full_fails_event(self):
        sim, sc = make(capacity=1, queue_limit=1)
        sc.submit(1.0)          # in service
        sc.submit(1.0)          # queued
        third = sc.submit(1.0)  # dropped
        assert third.triggered and not third.ok
        assert isinstance(third.value, QueueFullError)
        assert sc.dropped == 1

    def test_queue_full_raises_in_process(self):
        sim, sc = make(capacity=1, queue_limit=0)
        caught = []

        def submitter():
            yield sc.submit(1.0)  # occupies server
            # unreachable second submit in this generator

        def overflow():
            try:
                yield sc.submit(1.0)
            except QueueFullError:
                caught.append(True)

        sim.process(submitter())
        sim.process(overflow())
        sim.run()
        assert caught == [True]

    def test_zero_demand_completes_immediately(self):
        sim, sc = make()
        done = sc.submit(0.0)
        sim.run()
        assert done.processed and sim.now == 0.0

    def test_negative_demand_rejected(self):
        sim, sc = make()
        with pytest.raises(ValueError):
            sc.submit(-0.5)

    def test_load_counts_queued_and_in_service(self):
        sim, sc = make(capacity=1)
        sc.submit(5.0)
        sc.submit(5.0)
        sc.submit(5.0)
        assert sc.load == 3
        assert sc.queue_length == 2
        sim.run()
        assert sc.load == 0

    def test_completed_counter(self):
        sim, sc = make(capacity=2)
        for _ in range(7):
            sc.submit(1.0)
        sim.run()
        assert sc.completed == 7

    def test_utilization_full_when_saturated(self):
        sim, sc = make(capacity=1)
        for _ in range(4):
            sc.submit(2.5)
        sim.run()
        assert sc.utilization.utilization(sim.now) == pytest.approx(1.0)

    def test_utilization_half_when_half_busy(self):
        sim, sc = make(capacity=2)
        sc.submit(10.0)  # one of two servers busy the whole time
        sim.run()
        assert sc.utilization.utilization(sim.now) == pytest.approx(0.5)

    def test_reset_stats_discards_warmup(self):
        sim, sc = make(capacity=1)
        sc.submit(10.0)
        sim.run()           # busy 0..10
        sc.reset_stats()    # window restarts at t=10
        sim.timeout(10.0)
        sim.run()           # idle 10..20
        assert sc.utilization.utilization(sim.now) == pytest.approx(0.0)

    def test_value_delivered_through_queue(self):
        sim, sc = make(capacity=1)
        vals = []
        for i in range(3):
            sc.submit(1.0, value=f"v{i}").callbacks.append(
                lambda e: vals.append(e.value)
            )
        sim.run()
        assert vals == ["v0", "v1", "v2"]

    def test_invalid_construction(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ServiceCenter(sim, "x", capacity=0)
        with pytest.raises(ValueError):
            ServiceCenter(sim, "x", queue_limit=-1)
