"""Unit tests for measurement instruments (repro.sim.stats)."""


import pytest
from hypothesis import given, strategies as st

from repro.sim import (
    CounterSet,
    ReservoirQuantiles,
    RunningStats,
    ThroughputMeter,
    UtilizationTracker,
)


class TestUtilizationTracker:
    def test_idle_is_zero(self):
        u = UtilizationTracker(1, now=0.0)
        assert u.utilization(10.0) == 0.0

    def test_fully_busy_is_one(self):
        u = UtilizationTracker(1, now=0.0)
        u.on_start(0.0)
        u.on_stop(10.0)
        assert u.utilization(10.0) == pytest.approx(1.0)

    def test_partial_busy(self):
        u = UtilizationTracker(1, now=0.0)
        u.on_start(2.0)
        u.on_stop(7.0)
        assert u.utilization(10.0) == pytest.approx(0.5)

    def test_capacity_normalization(self):
        u = UtilizationTracker(4, now=0.0)
        u.on_start(0.0)
        u.on_start(0.0)
        u.on_stop(10.0)
        u.on_stop(10.0)
        assert u.utilization(10.0) == pytest.approx(0.5)

    def test_ongoing_busy_counted(self):
        u = UtilizationTracker(1, now=0.0)
        u.on_start(0.0)
        assert u.utilization(4.0) == pytest.approx(1.0)

    def test_reset_starts_fresh_window(self):
        u = UtilizationTracker(1, now=0.0)
        u.on_start(0.0)
        u.on_stop(10.0)
        u.reset(10.0)
        assert u.utilization(20.0) == pytest.approx(0.0)

    def test_reset_mid_service_keeps_busy_state(self):
        u = UtilizationTracker(1, now=0.0)
        u.on_start(0.0)
        u.reset(5.0)
        u.on_stop(10.0)
        assert u.utilization(10.0) == pytest.approx(1.0)

    def test_overflow_raises(self):
        u = UtilizationTracker(1, now=0.0)
        u.on_start(0.0)
        with pytest.raises(ValueError):
            u.on_start(1.0)

    def test_underflow_raises(self):
        u = UtilizationTracker(1, now=0.0)
        with pytest.raises(ValueError):
            u.on_stop(1.0)

    def test_zero_window_is_zero(self):
        u = UtilizationTracker(1, now=5.0)
        assert u.utilization(5.0) == 0.0


class TestThroughputMeter:
    def test_rate_units_per_second(self):
        m = ThroughputMeter(now=0.0)
        for _ in range(100):
            m.record()
        # 100 completions in 1000 ms == 100/s
        assert m.per_second(1000.0) == pytest.approx(100.0)

    def test_reset_discards_warmup(self):
        m = ThroughputMeter(now=0.0)
        for _ in range(50):
            m.record()
        m.reset(500.0)
        for _ in range(10):
            m.record()
        assert m.count == 10
        assert m.per_second(1500.0) == pytest.approx(10.0)

    def test_zero_window(self):
        m = ThroughputMeter(now=3.0)
        assert m.per_second(3.0) == 0.0


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.n == 0 and s.mean == 0.0 and s.variance == 0.0

    def test_known_values(self):
        s = RunningStats()
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            s.record(x)
        assert s.mean == pytest.approx(5.0)
        assert s.stdev == pytest.approx(2.138, abs=1e-3)
        assert s.min == 2.0 and s.max == 9.0

    def test_reset(self):
        s = RunningStats()
        s.record(10.0)
        s.reset()
        assert s.n == 0 and s.mean == 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=2, max_size=200))
    def test_matches_two_pass_formulas(self, xs):
        s = RunningStats()
        for x in xs:
            s.record(x)
        mean = sum(xs) / len(xs)
        var = sum((x - mean) ** 2 for x in xs) / (len(xs) - 1)
        assert s.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
        assert s.variance == pytest.approx(var, rel=1e-6, abs=1e-3)
        assert s.min == min(xs) and s.max == max(xs)


class TestReservoirQuantiles:
    def test_small_exact(self):
        r = ReservoirQuantiles(capacity=100)
        for x in range(11):
            r.record(float(x))
        assert r.quantile(0.0) == 0.0
        assert r.quantile(0.5) == 5.0
        assert r.quantile(1.0) == 10.0

    def test_empty_returns_zero(self):
        assert ReservoirQuantiles().quantile(0.5) == 0.0

    def test_bad_q_raises(self):
        with pytest.raises(ValueError):
            ReservoirQuantiles().quantile(1.5)

    def test_subsampling_keeps_rough_quantiles(self):
        r = ReservoirQuantiles(capacity=64)
        n = 10_000
        for x in range(n):
            r.record(float(x))
        assert r.count == n
        # Median of 0..9999 ~ 5000, tolerate reservoir coarseness.
        assert abs(r.quantile(0.5) - 5000) < 1000

    def test_deterministic(self):
        def run():
            r = ReservoirQuantiles(capacity=32)
            for x in range(5000):
                r.record(float((x * 37) % 1000))
            return [r.quantile(q) for q in (0.1, 0.5, 0.9)]

        assert run() == run()

    def test_reset(self):
        r = ReservoirQuantiles()
        r.record(5.0)
        r.reset()
        assert r.count == 0 and r.quantile(0.5) == 0.0


class TestCounterSet:
    def test_incr_and_get(self):
        c = CounterSet()
        c.incr("hit")
        c.incr("hit", 2)
        assert c.get("hit") == 3
        assert c.get("miss") == 0

    def test_ratio_with_explicit_denominator(self):
        c = CounterSet()
        c.incr("local", 30)
        c.incr("remote", 60)
        c.incr("disk", 10)
        assert c.ratio("local", "local", "remote", "disk") == pytest.approx(0.3)

    def test_ratio_over_all(self):
        c = CounterSet()
        c.incr("a", 1)
        c.incr("b", 3)
        assert c.ratio("a") == pytest.approx(0.25)

    def test_ratio_zero_denominator(self):
        assert CounterSet().ratio("x", "y") == 0.0

    def test_reset_and_as_dict(self):
        c = CounterSet()
        c.incr("x", 5)
        d = c.as_dict()
        assert d == {"x": 5}
        d["x"] = 99  # snapshot, not a view
        assert c.get("x") == 5
        c.reset()
        assert c.as_dict() == {}
