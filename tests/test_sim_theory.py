"""Queueing-theory validation of the simulator.

The service-center model must reproduce textbook results before we trust
what it says about clusters: utilization law, M/M/1 and M/D/1 waiting
times, Little's law.  Each test drives a ServiceCenter with a Poisson
arrival process and compares steady-state measurements against the
closed forms in ``repro.sim.theory``.
"""

import pytest

from repro.sim import RunningStats, ServiceCenter, Simulator, stream
from repro.sim.theory import (
    little_l,
    md1_wait_ms,
    mg1_wait_ms,
    mm1_wait_ms,
    utilization,
)


def drive_queue(lam, service_ms, n_jobs=30_000, exponential_service=False,
                seed=5, warmup=2_000):
    """Poisson arrivals into a single-server center; returns measured
    (utilization, mean_wait_ms, mean_system_ms, effective_lambda)."""
    sim = Simulator()
    sc = ServiceCenter(sim, "q", capacity=1)
    arrival_rng = stream(seed, "arrivals")
    service_rng = stream(seed, "services")
    inter = arrival_rng.exponential(1.0 / lam, size=n_jobs)
    if exponential_service:
        services = service_rng.exponential(service_ms, size=n_jobs)
    else:
        services = [service_ms] * n_jobs

    wait = RunningStats()
    system = RunningStats()
    state = {"measured_arrivals": 0, "first_arrival": None, "last_arrival": None}

    def submit(i, when):
        def fire():
            measured = i >= warmup
            if measured:
                if state["first_arrival"] is None:
                    state["first_arrival"] = sim.now
                    sc.reset_stats()
                state["last_arrival"] = sim.now
                state["measured_arrivals"] += 1
            t0 = sim.now
            done = sc.submit(float(services[i]))

            def record(ev):
                if measured:
                    total = sim.now - t0
                    system.record(total)
                    wait.record(total - float(services[i]))

            done.callbacks.append(record)

        sim.call_at(when, fire)

    t = 0.0
    for i in range(n_jobs):
        t += float(inter[i])
        submit(i, t)
    sim.run()
    window = state["last_arrival"] - state["first_arrival"]
    eff_lam = (state["measured_arrivals"] - 1) / window
    return sc.utilization.utilization(sim.now), wait.mean, system.mean, eff_lam


class TestFormulas:
    def test_utilization_law(self):
        assert utilization(0.5, 1.0) == pytest.approx(0.5)

    def test_mm1_known_value(self):
        # lam=0.5/ms, S=1ms -> rho=0.5 -> Wq = rho*S/(1-rho) = 1ms
        assert mm1_wait_ms(0.5, 1.0) == pytest.approx(1.0)

    def test_md1_is_half_mm1(self):
        assert md1_wait_ms(0.5, 1.0) == pytest.approx(
            mm1_wait_ms(0.5, 1.0) / 2.0
        )

    def test_unstable_rejected(self):
        with pytest.raises(ValueError, match="unstable"):
            md1_wait_ms(2.0, 1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            utilization(-1.0, 1.0)
        with pytest.raises(ValueError):
            little_l(1.0, -1.0)

    def test_mg1_interpolates(self):
        lam, s = 0.6, 1.0
        assert (
            md1_wait_ms(lam, s)
            < mg1_wait_ms(lam, s, 0.5)
            < mm1_wait_ms(lam, s)
        )

    def test_little(self):
        assert little_l(0.5, 4.0) == pytest.approx(2.0)


class TestSimulatorAgreement:
    def test_utilization_law_md1(self):
        lam, s = 0.6, 1.0
        u, _, _, eff = drive_queue(lam, s)
        assert u == pytest.approx(utilization(eff, s), abs=0.02)

    def test_md1_waiting_time(self):
        lam, s = 0.6, 1.0
        _, wq, _, eff = drive_queue(lam, s)
        assert wq == pytest.approx(md1_wait_ms(eff, s), rel=0.08)

    def test_mm1_waiting_time(self):
        lam, s = 0.5, 1.0
        _, wq, _, eff = drive_queue(lam, s, exponential_service=True)
        assert wq == pytest.approx(mm1_wait_ms(eff, s), rel=0.12)

    def test_littles_law_holds(self):
        lam, s = 0.6, 1.0
        _, _, w_system, eff = drive_queue(lam, s)
        # L measured indirectly: L = lam * W must be consistent with the
        # utilization + queue decomposition L = Lq + rho.
        l_little = little_l(eff, w_system)
        lq = little_l(eff, md1_wait_ms(eff, s))
        assert l_little == pytest.approx(lq + eff * s, rel=0.1)

    def test_heavier_load_longer_waits(self):
        s = 1.0
        _, w_low, _, _ = drive_queue(0.3, s, n_jobs=12_000)
        _, w_high, _, _ = drive_queue(0.8, s, n_jobs=12_000)
        assert w_high > w_low * 3
