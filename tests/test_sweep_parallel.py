"""Determinism tests for the sharded sweep runner.

The contract (DESIGN.md §17): sharding experiment cells across worker
processes changes *when* each cell runs, never *what* it produces —
``workers=N`` output is byte-identical to a serial run.  The argument
has three legs (worker isolation, per-cell seeding, ordered merge);
these tests exercise all of them end to end with a fig2 smoke sweep,
down to the serialized BENCH trajectory record.
"""

import json

import pytest

from repro.bench.schema import dump_record, wrap_result
from repro.experiments import defaults
from repro.experiments.figures import ALL_SYSTEMS, fig2
from repro.experiments.parallel import default_workers, run_cells
from repro.experiments.runner import ExperimentConfig
from repro.experiments.sweep import memory_sweep
from repro.traces import datasets

#: Small enough for the tier-1 suite, big enough that every system does
#: peer fetches, disk reads and evictions (same shape as the golden runs).
_SCALE = 0.005
_REQUESTS = 300
_CLIENTS = 8


def _smoke_trace():
    return datasets.scaled("rutgers", _SCALE, num_requests=_REQUESTS)


@pytest.fixture
def smoke_defaults(monkeypatch):
    """Pin the scale knobs so fig2's internal workload() calls are tiny
    and test output is independent of the ambient REPRO_* environment."""
    monkeypatch.setattr(defaults, "SCALE", _SCALE)
    monkeypatch.setattr(defaults, "NUM_REQUESTS", _REQUESTS)
    monkeypatch.setattr(defaults, "NUM_CLIENTS", _CLIENTS)


def test_fig2_parallel_bench_record_byte_identical(smoke_defaults, tmp_path):
    """The headline determinism claim: a fig2 smoke sweep sharded across
    4 workers emits a BENCH trajectory record byte-identical to the
    serial run's — same payload, same params digest, same file bytes."""
    kw = dict(trace_names=["rutgers"], num_nodes=4, memories_mb=[0.1, 0.5])
    serial = fig2(workers=1, **kw)
    sharded = fig2(workers=4, **kw)

    params = {"scale": _SCALE, "requests": _REQUESTS, "clients": _CLIENTS}
    paths = {}
    for tag, data in [("w1", serial), ("w4", sharded)]:
        record = wrap_result("fig2", data, seed=0, params=params)
        paths[tag] = tmp_path / f"BENCH_fig2_{tag}.json"
        dump_record(record, paths[tag])
    assert paths["w1"].read_bytes() == paths["w4"].read_bytes()

    # And the payload is live data, not a degenerate empty sweep.
    panel = json.loads(paths["w1"].read_text())["data"]["rutgers"]
    assert panel["memories_mb"] == [0.1, 0.5]
    for system in ALL_SYSTEMS:
        assert all(t > 0 for t in panel["throughput_rps"][system])


def test_memory_sweep_parallel_matches_serial():
    """memory_sweep regroups the flat sharded cell list back into
    per-system series — every result must land in its serial position."""
    trace = _smoke_trace()
    kw = dict(
        systems=["press", "cc-kmc"], memories_mb=[0.1, 0.5],
        num_nodes=4, num_clients=_CLIENTS,
    )
    serial = memory_sweep(trace, workers=1, **kw)
    sharded = memory_sweep(trace, workers=3, **kw)
    assert list(serial) == list(sharded)
    for label in serial:
        for a, b in zip(serial[label], sharded[label]):
            assert a.config.system == b.config.system
            assert a.config.mem_mb_per_node == b.config.mem_mb_per_node
            assert a.throughput_rps == b.throughput_rps
            assert a.mean_response_ms == b.mean_response_ms
            assert a.hit_rates == b.hit_rates


def test_run_cells_preserves_submission_order():
    """The ordered-merge leg in isolation: results come back in cell
    order even when cells finish out of order across processes."""
    trace = _smoke_trace()
    mems = [0.1, 0.25, 0.5, 1.0]
    cells = [
        ExperimentConfig(
            system="press", trace=trace, num_nodes=2,
            mem_mb_per_node=m, num_clients=_CLIENTS,
        )
        for m in mems
    ]
    results = run_cells(cells, workers=4)
    assert [r.config.mem_mb_per_node for r in results] == mems


def test_default_workers_env_knob(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert default_workers() == 1
    monkeypatch.setenv("REPRO_WORKERS", "6")
    assert default_workers() == 6
    monkeypatch.setenv("REPRO_WORKERS", "0")
    with pytest.raises(ValueError, match="REPRO_WORKERS"):
        default_workers()
