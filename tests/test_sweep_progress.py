"""Tests for live sweep telemetry and the observed sweep runner.

Three layers:

* :class:`SweepProgress` heartbeat events under an injected clock
  (byte-stable streams, straggler statistics, degenerate shapes);
* worker failure capture — a failing cell is named (system / trace /
  params digest) instead of surfacing a bare multiprocessing traceback;
* the PR's acceptance path end-to-end: a fig2 smoke sweep with 4
  workers, ledger, progress and per-cell artifacts emits a BENCH record
  byte-identical to the plain serial sweep, and ``analyze fleet`` over
  the resulting ledger passes the conservation check exactly.
"""

import itertools
import json

import pytest

from repro.experiments import cli, defaults
from repro.experiments.parallel import (
    CellInfo,
    CellOutcome,
    SweepCellError,
    SweepProgress,
    cell_info,
    run_cells,
    run_cells_observed,
)
from repro.experiments.runner import ExperimentConfig
from repro.obs.analyze import RESOURCE_CLASSES
from repro.obs.reports import render_progress_report
from repro.traces import datasets

_SCALE = 0.005
_REQUESTS = 300
_CLIENTS = 8


def _smoke_trace():
    return datasets.scaled("rutgers", _SCALE, num_requests=_REQUESTS)


@pytest.fixture
def smoke_defaults(monkeypatch):
    monkeypatch.setattr(defaults, "SCALE", _SCALE)
    monkeypatch.setattr(defaults, "NUM_REQUESTS", _REQUESTS)
    monkeypatch.setattr(defaults, "NUM_CLIENTS", _CLIENTS)


def fake_clock(step=1.0):
    counter = itertools.count()
    return lambda: step * next(counter)


def make_outcome(index, wall_s=1.0, ok=True, worker="w0"):
    info = CellInfo(
        index=index, system="press", workload="rutgers", num_nodes=4,
        mem_mb_per_node=0.5, num_clients=8, seed=0,
        params_digest="f" * 16,
    )
    return CellOutcome(info=info, ok=ok, wall_s=wall_s, worker=worker,
                       error=None if ok else "RuntimeError: boom")


# ---------------------------------------------------------------------------
# heartbeat stream
# ---------------------------------------------------------------------------
class TestSweepProgress:
    def test_event_stream_under_injected_clock(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        progress = SweepProgress(total=2, path=str(path),
                                 clock=fake_clock())
        progress.start()                      # clock -> 0
        progress.cell_done(make_outcome(1, wall_s=2.0))   # clock -> 1
        progress.cell_done(make_outcome(0, wall_s=1.5, worker="w1"))
        summary = progress.finish()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["event"] for e in events] == ["start", "cell", "cell",
                                               "end"]
        assert events[0]["total"] == 2
        first = events[1]
        assert first["index"] == 1            # completion order, not cell
        assert first["done"] == 1
        assert first["elapsed_s"] == 1.0
        assert first["cells_per_s"] == 1.0
        assert first["eta_s"] == 1.0
        assert first["wall_s"] == 2.0
        second = events[2]
        assert second["done"] == 2 and second["eta_s"] == 0.0
        assert events[3]["done"] == 2 and events[3]["failed"] == 0
        assert summary["workers"] == {"w0": 1, "w1": 1}
        assert summary["elapsed_s"] == 3.0

    def test_identical_runs_are_byte_identical(self, tmp_path):
        paths = []
        for tag in ("a", "b"):
            path = tmp_path / f"{tag}.jsonl"
            progress = SweepProgress(total=1, path=str(path),
                                     clock=fake_clock())
            progress.start()
            progress.cell_done(make_outcome(0))
            progress.finish()
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_straggler_detection(self):
        progress = SweepProgress(total=3, clock=fake_clock(),
                                 straggler_factor=3.0)
        progress.start()
        progress.cell_done(make_outcome(0, wall_s=1.0))
        progress.cell_done(make_outcome(1, wall_s=1.0))
        progress.cell_done(make_outcome(2, wall_s=10.0))
        stragglers = progress.stragglers()
        assert len(stragglers) == 1
        assert stragglers[0]["index"] == 2
        assert stragglers[0]["x_median"] == 10.0

    def test_single_cell_has_no_straggler_statistics(self):
        progress = SweepProgress(total=1, clock=fake_clock())
        progress.start()
        progress.cell_done(make_outcome(0, wall_s=100.0))
        assert progress.stragglers() == []

    def test_failed_cells_counted(self):
        progress = SweepProgress(total=2, clock=fake_clock())
        progress.start()
        progress.cell_done(make_outcome(0))
        progress.cell_done(make_outcome(1, ok=False))
        assert progress.summary()["failed"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepProgress(total=-1)
        with pytest.raises(ValueError):
            SweepProgress(total=1, straggler_factor=1.0)


# ---------------------------------------------------------------------------
# progress rendering (degenerate shapes included)
# ---------------------------------------------------------------------------
class TestRenderProgress:
    def test_zero_cell_sweep(self):
        out = render_progress_report([{"event": "start", "total": 4}])
        assert out == "sweep progress: no cells ran (of 4 planned)"
        assert render_progress_report([]) \
            == "sweep progress: no cells ran (of 0 planned)"

    def test_single_cell_sweep(self, tmp_path):
        path = tmp_path / "p.jsonl"
        progress = SweepProgress(total=1, path=str(path),
                                 clock=fake_clock())
        progress.start()
        progress.cell_done(make_outcome(0, wall_s=1.25))
        progress.finish()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        out = render_progress_report(events)
        assert "1/1 cells completed" in out
        assert "press/rutgers/0.5MB" in out
        assert "stragglers: n/a (need at least 2 cells)" in out
        assert "workers: w0=1" in out

    def test_multi_cell_timeline(self, tmp_path):
        path = tmp_path / "p.jsonl"
        progress = SweepProgress(total=2, path=str(path),
                                 clock=fake_clock())
        progress.start()
        progress.cell_done(make_outcome(0))
        progress.cell_done(make_outcome(1, ok=False))
        progress.finish()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        out = render_progress_report(events)
        assert "2/2 cells completed" in out
        assert "FAILED" in out
        assert "1 failed" in out
        assert "stragglers: none" in out


# ---------------------------------------------------------------------------
# failure capture
# ---------------------------------------------------------------------------
class TestFailureCapture:
    def _cells(self):
        trace = _smoke_trace()
        good = ExperimentConfig(system="press", trace=trace, num_nodes=2,
                                mem_mb_per_node=0.25, num_clients=_CLIENTS)
        bad = ExperimentConfig(system="bogus", trace=trace, num_nodes=2,
                               mem_mb_per_node=0.25, num_clients=_CLIENTS)
        return [good, bad]

    def test_sweep_cell_error_names_the_cell(self):
        cells = self._cells()
        with pytest.raises(SweepCellError) as exc:
            run_cells(cells, workers=1)
        message = str(exc.value)
        assert "cell 1" in message
        assert "bogus/rutgers@0.005/0.25MB/seed0" in message
        assert cell_info(1, cells[1]).params_digest in message
        assert "unknown system" in message

    def test_failures_collector_keeps_the_merge_alive(self):
        failures = []
        results, outcomes = run_cells_observed(
            self._cells(), workers=1, failures=failures)
        assert results[0] is not None and results[1] is None
        assert [o.ok for o in outcomes] == [True, False]
        assert len(failures) == 1
        assert failures[0].info.index == 1
        assert "unknown system" in failures[0].error
        assert "ValueError" in failures[0].traceback
        assert failures[0].wall_s >= 0.0

    def test_observed_serial_results_match_plain(self):
        trace = _smoke_trace()
        cells = [
            ExperimentConfig(system="press", trace=trace, num_nodes=2,
                             mem_mb_per_node=m, num_clients=_CLIENTS)
            for m in (0.1, 0.5)
        ]
        plain = run_cells(cells, workers=1)
        observed, outcomes = run_cells_observed(cells, workers=1,
                                                profile=True)
        for a, b in zip(plain, observed):
            assert a.throughput_rps == b.throughput_rps
            assert a.mean_response_ms == b.mean_response_ms
            assert a.hit_rates == b.hit_rates
        for out in outcomes:
            assert out.ok and out.summary["p95_ms"] > 0
            assert out.summary["requests_measured"] > 0


# ---------------------------------------------------------------------------
# the acceptance path, end to end through the CLI
# ---------------------------------------------------------------------------
class TestObservedSweepEndToEnd:
    @pytest.fixture
    def sweep_defaults(self, smoke_defaults, monkeypatch):
        """Shrink the bench memory axis so the CLI matrix stays tiny
        (2 memories x 4 systems = 8 cells after scaling)."""
        monkeypatch.setattr(defaults, "BENCH_MEMORY_MB", [20, 100])
        monkeypatch.setenv("REPRO_GIT_SHA", "cafebabe")
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        monkeypatch.delenv("REPRO_DIRECTORY", raising=False)

    def test_ledgered_sweep_is_passive_and_fleet_checks_out(
        self, sweep_defaults, tmp_path, capsys
    ):
        plain = tmp_path / "BENCH_plain.json"
        observed = tmp_path / "BENCH_observed.json"
        ledger = tmp_path / "ledger.jsonl"
        progress = tmp_path / "progress.jsonl"

        assert cli.main([
            "sweep", "--workload", "rutgers", "--nodes", "4",
            "--workers", "1", "--bench-out", str(plain),
        ]) == 0
        assert cli.main([
            "sweep", "--workload", "rutgers", "--nodes", "4",
            "--workers", "4", "--bench-out", str(observed),
            "--ledger", str(ledger), "--progress", str(progress),
        ]) == 0
        out = capsys.readouterr().out
        assert "sweep progress" in out and "8/8 cells completed" in out

        # Telemetry is passive: byte-identical trajectory records.
        assert plain.read_bytes() == observed.read_bytes()

        # The ledger holds the sweep manifest + one record per cell.
        from repro.obs.ledger import filter_records, load_ledger
        records = load_ledger(str(ledger))
        sweeps = filter_records(records, kind="sweep")
        cells = filter_records(records, kind="cell",
                               parent=sweeps[0]["run_id"])
        assert len(sweeps) == 1 and len(cells) == 8
        assert sweeps[0]["git_sha"] == "cafebabe"
        assert sweeps[0]["obs_overhead"]["events_per_s_tracer_on"] > 0
        for cell in cells:
            assert cell["status"] == "ok"
            assert len(cell["params_digest"]) == 16
            assert cell["summary"]["throughput_rps"] > 0

        # `analyze fleet` over the ledger: conservation passes exactly,
        # every binding resource is a real resource class.
        fleet_json = tmp_path / "fleet.json"
        assert cli.main([
            "analyze", "fleet", str(ledger), "--json", str(fleet_json),
        ]) == 0
        report = json.loads(fleet_json.read_text())
        assert report["kind"] == "fleet"
        assert report["conservation"]["ok"]
        assert report["conservation"]["cells_checked"] == 8
        assert report["sweep"]["cells_failed"] == 0
        assert report["binding_resources"]
        for resource in report["binding_resources"]:
            assert resource in RESOURCE_CLASSES
        matrix = report["matrix"]
        assert matrix["traces"] == ["rutgers@0.005"]  # scaled trace name
        assert len(matrix["memories_mb"]) == 2
        rendered = capsys.readouterr().out
        assert "conservation check [OK]" in rendered

        # The multi-cell Perfetto merge gives every cell its own
        # process-lane block.
        perfetto = tmp_path / "fleet-trace.json"
        assert cli.main([
            "analyze", "fleet", str(ledger), "--perfetto", str(perfetto),
        ]) == 0
        doc = json.loads(perfetto.read_text())
        assert len(doc["otherData"]["cells"]) == 8
        bases = [c["pid_base"] for c in doc["otherData"]["cells"]]
        assert bases == sorted(bases) and len(set(bases)) == 8
        labels = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert any("rutgers@0.005/press" in label for label in labels)
