"""Property-based tests (hypothesis) for trace well-formedness.

Across randomized experiment configurations, every trace the cluster
emits must satisfy the structural contract that makes traces usable for
debugging classification decisions:

* spans nest — a parented span lies within its parent's interval, in the
  same trace, and the parent exists;
* timestamps are monotone — ``start <= end`` for every span;
* every ``remote``/``disk``-classified request has a matching fetch span
  (or a ``coalesce``/``wait_master`` point naming the fetch it joined);
* metrics totals equal trace-derived totals — the per-class request
  counters and the response histogram agree with the root-span counts.
"""

from collections import Counter as TallyCounter
from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.obs import Observability
from repro.traces import datasets

#: One small workload shared by every example (generation is seeded by
#: the spec, so this is deterministic and cheap to reuse).
WORKLOAD = datasets.scaled("rutgers", 0.005, num_requests=120)

configs = st.fixed_dictionaries(
    {
        "system": st.sampled_from(["cc-basic", "cc-sched", "cc-kmc", "press"]),
        "num_nodes": st.integers(min_value=2, max_value=5),
        "num_clients": st.integers(min_value=1, max_value=12),
        "mem_mb_per_node": st.sampled_from([0.25, 0.5, 1.0]),
        "seed": st.integers(min_value=0, max_value=10_000),
    }
)


def run_traced(kwargs):
    obs = Observability(trace=True)
    run_experiment(
        ExperimentConfig(trace=WORKLOAD, warmup_frac=0.25, **kwargs), obs=obs
    )
    return obs


def by_trace(records):
    traces = defaultdict(list)
    for rec in records:
        traces[rec["trace"]].append(rec)
    return traces


#: Child span names that explain a non-local service class.
REMOTE_EVIDENCE = {"peer_fetch", "coalesce", "wait_master", "forward"}


@settings(max_examples=8, deadline=None)
@given(configs)
def test_traces_well_formed(kwargs):
    obs = run_traced(kwargs)
    records = obs.tracer.records
    assert records, "a traced run must emit spans"

    spans = {rec["span"]: rec for rec in records}
    assert len(spans) == len(records), "span ids must be unique"

    for rec in records:
        # Timestamps are monotone within every span.
        assert 0.0 <= rec["start"] <= rec["end"]
        if rec["parent"] is None:
            assert rec["trace"] == rec["span"], "a root starts its trace"
        else:
            parent = spans.get(rec["parent"])
            assert parent is not None, "parent span must be emitted too"
            assert parent["trace"] == rec["trace"], "children share the trace"
            # Spans nest: the child lies within the parent's interval.
            assert parent["start"] <= rec["start"]
            assert rec["end"] <= parent["end"]

    for trace_id, trace in by_trace(records).items():
        roots = [rec for rec in trace if rec["parent"] is None]
        assert len(roots) == 1, f"trace {trace_id} must have exactly one root"


@settings(max_examples=8, deadline=None)
@given(configs)
def test_service_class_has_matching_fetch_span(kwargs):
    obs = run_traced(kwargs)
    traces = by_trace(obs.tracer.records)
    for trace in traces.values():
        root = next(rec for rec in trace if rec["parent"] is None)
        if root["name"] != "request":
            continue  # background activity: forward / writeback / replicate
        cls = root["attrs"]["cls"]
        names = {rec["name"] for rec in trace if rec is not root}
        if cls == "disk":
            assert "disk_read" in names
        elif cls == "remote":
            assert names & REMOTE_EVIDENCE
        elif cls == "coalesced":  # PRESS only
            assert "coalesce" in names
        else:
            assert cls == "local"
            # A local hit needed no fetch: nothing but the cache probe.
            assert names <= {"probe"}


@settings(max_examples=6, deadline=None)
@given(configs.filter(lambda kw: kw["system"] != "press"))
def test_probe_agrees_with_classification(kwargs):
    """The middleware's probe point records exactly the split that
    determines the service class."""
    obs = run_traced(kwargs)
    for trace in by_trace(obs.tracer.records).values():
        root = next(rec for rec in trace if rec["parent"] is None)
        if root["name"] != "request":
            continue
        probes = [
            rec for rec in trace
            if rec["name"] == "probe" and rec["parent"] == root["span"]
        ]
        assert len(probes) == 1, "one cache probe per read"
        a = probes[0]["attrs"]
        cls = root["attrs"]["cls"]
        if cls == "disk":
            assert a["homes"] > 0
        elif cls == "remote":
            assert a["homes"] == 0 and (a["peers"] + a["joined"]) > 0
        else:
            assert a["homes"] == a["peers"] == a["joined"] == 0
            assert a["local"] == a["n"]


@settings(max_examples=8, deadline=None)
@given(configs)
def test_metrics_totals_equal_trace_totals(kwargs):
    obs = run_traced(kwargs)
    roots = [
        rec for rec in obs.tracer.records
        if rec["parent"] is None and rec["name"] == "request"
    ]
    trace_classes = TallyCounter(rec["attrs"]["cls"] for rec in roots)

    snap = obs.registry.snapshot()
    metric_classes = {
        name[len("requests_"):]: count
        for name, count in snap["counters"].items()
        if name.startswith("requests_")
    }
    assert metric_classes == dict(trace_classes)

    # The driver's whole-run response histogram counts one observation
    # per served request — the same population as the request roots.
    hist = snap["histograms"]["client.response_ms"]
    assert hist["count"] == len(roots) == WORKLOAD.num_requests
