"""Tests for trace model, synthesis, datasets and analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.rng import stream
from repro.traces import (
    SPECS,
    TRACE_NAMES,
    Trace,
    TraceSpec,
    bytes_for_request_fraction,
    generate,
    load,
    lognormal_sizes_kb,
    popularity_cdf,
    scaled,
    spec,
    table2_row,
    theoretical_max_hit_rate,
    zipf_weights,
)


class TestTraceSpec:
    def test_file_set_mb(self):
        s = TraceSpec("t", num_files=1024, num_requests=10, mean_file_kb=10.0)
        assert s.file_set_mb == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceSpec("t", 0, 10, 10.0)
        with pytest.raises(ValueError):
            TraceSpec("t", 10, 0, 10.0)
        with pytest.raises(ValueError):
            TraceSpec("t", 10, 10, -1.0)
        with pytest.raises(ValueError):
            TraceSpec("t", 10, 10, 10.0, zipf_theta=-0.1)
        with pytest.raises(ValueError):
            TraceSpec("t", 10, 10, 10.0, size_popularity_rho=2.0)

    def test_scaled_shrinks_counts_not_sizes(self):
        s = TraceSpec("t", 10_000, 100_000, 20.0)
        small = s.scaled(0.1)
        assert small.num_files == 1_000
        assert small.num_requests == 10_000
        assert small.mean_file_kb == 20.0
        assert small.name == "t@0.1"

    def test_scaled_floors(self):
        s = TraceSpec("t", 100, 1000, 20.0)
        tiny = s.scaled(0.001)
        assert tiny.num_files == 50 and tiny.num_requests == 500

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            TraceSpec("t", 10, 10, 10.0).scaled(0)

    def test_with_requests(self):
        s = TraceSpec("t", 10, 10, 10.0).with_requests(55)
        assert s.num_requests == 55 and s.num_files == 10


class TestTraceModel:
    def make(self):
        return Trace(
            spec=TraceSpec("t", 3, 5, 10.0),
            sizes_kb=np.array([10.0, 20.0, 30.0]),
            requests=np.array([0, 0, 1, 2, 0]),
        )

    def test_aggregates(self):
        t = self.make()
        assert t.num_files == 3 and t.num_requests == 5
        assert t.mean_file_kb == pytest.approx(20.0)
        assert t.mean_request_kb == pytest.approx((10 + 10 + 20 + 30 + 10) / 5)
        assert t.file_set_mb == pytest.approx(60 / 1024)
        assert t.total_requested_mb == pytest.approx(80 / 1024)

    def test_head(self):
        t = self.make().head(2)
        assert t.num_requests == 2
        assert list(t) == [0, 0]

    def test_head_invalid(self):
        with pytest.raises(ValueError):
            self.make().head(0)

    def test_request_counts(self):
        assert list(self.make().request_counts()) == [3, 1, 1]

    def test_validation(self):
        s = TraceSpec("t", 2, 2, 10.0)
        with pytest.raises(ValueError):
            Trace(s, np.array([10.0, -1.0]), np.array([0, 1]))
        with pytest.raises(ValueError):
            Trace(s, np.array([10.0, 10.0]), np.array([0, 5]))
        with pytest.raises(ValueError):
            Trace(s, np.array([]), np.array([0]))


class TestSynthesis:
    def test_zipf_weights_normalized_and_decreasing(self):
        w = zipf_weights(100, 1.1)
        assert w.sum() == pytest.approx(1.0)
        assert (np.diff(w) < 0).all()

    def test_zipf_theta_zero_uniform(self):
        w = zipf_weights(10, 0.0)
        assert np.allclose(w, 0.1)

    def test_zipf_invalid(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)

    def test_lognormal_mean_exact(self):
        sizes = lognormal_sizes_kb(5000, 21.3, 1.4, stream(0, "s"))
        assert sizes.mean() == pytest.approx(21.3, rel=1e-6)
        assert (sizes >= 0.5).all() and (sizes <= 4096.0).all()

    def test_lognormal_heavy_tail(self):
        sizes = lognormal_sizes_kb(20000, 20.0, 1.4, stream(0, "s"))
        # Median well below mean: right-skewed.
        assert np.median(sizes) < 0.7 * sizes.mean()

    def test_lognormal_invalid(self):
        with pytest.raises(ValueError):
            lognormal_sizes_kb(0, 10.0, 1.0, stream(0, "s"))
        with pytest.raises(ValueError):
            lognormal_sizes_kb(10, 0.1, 1.0, stream(0, "s"))

    def test_generate_matches_spec_counts(self):
        s = TraceSpec("t", 500, 4000, 15.0, zipf_theta=1.0)
        t = generate(s)
        assert t.num_files == 500 and t.num_requests == 4000
        assert t.mean_file_kb == pytest.approx(15.0, rel=1e-6)

    def test_generate_deterministic(self):
        s = TraceSpec("t", 200, 1000, 15.0)
        a, b = generate(s), generate(s)
        assert np.array_equal(a.requests, b.requests)
        assert np.array_equal(a.sizes_kb, b.sizes_kb)

    def test_generate_seed_changes_stream(self):
        s1 = TraceSpec("t", 200, 1000, 15.0, seed=1)
        s2 = TraceSpec("t", 200, 1000, 15.0, seed=2)
        assert not np.array_equal(generate(s1).requests, generate(s2).requests)

    def test_popular_files_tend_small_with_rho(self):
        s = TraceSpec("t", 2000, 50_000, 20.0, zipf_theta=1.0,
                      size_popularity_rho=0.8)
        t = generate(s)
        assert t.mean_request_kb < t.mean_file_kb

    @given(st.integers(min_value=1, max_value=50),
           st.integers(min_value=1, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_generate_any_small_spec_is_valid(self, nf, nr):
        t = generate(TraceSpec("t", nf, nr, 12.0))
        assert t.num_files == nf and t.num_requests == nr
        assert t.requests.min() >= 0 and t.requests.max() < nf

    def test_temporal_alpha_raises_recency(self):
        from repro.traces.analysis import recency_reference_fraction

        base = TraceSpec("t", 800, 20_000, 15.0, zipf_theta=1.0)
        iid = generate(base)
        import dataclasses

        loc = generate(dataclasses.replace(base, temporal_alpha=0.4))
        assert (
            recency_reference_fraction(loc)
            > recency_reference_fraction(iid) + 0.03
        )

    def test_temporal_alpha_zero_is_identity(self):
        import dataclasses

        base = TraceSpec("t", 100, 2_000, 15.0)
        a = generate(base)
        b = generate(dataclasses.replace(base, temporal_alpha=0.0))
        assert np.array_equal(a.requests, b.requests)

    def test_temporal_preserves_file_set(self):
        import dataclasses

        base = TraceSpec("t", 100, 2_000, 15.0)
        loc = generate(dataclasses.replace(base, temporal_alpha=0.5))
        assert loc.requests.min() >= 0 and loc.requests.max() < 100
        assert loc.num_requests == 2_000

    def test_temporal_validation(self):
        with pytest.raises(ValueError):
            TraceSpec("t", 10, 10, 10.0, temporal_alpha=1.0)
        with pytest.raises(ValueError):
            TraceSpec("t", 10, 10, 10.0, temporal_window=0)

    def test_recency_fraction_validation(self):
        from repro.traces.analysis import recency_reference_fraction

        t = generate(TraceSpec("t", 10, 100, 10.0))
        with pytest.raises(ValueError):
            recency_reference_fraction(t, window=0)
        assert 0.0 <= recency_reference_fraction(t, window=5) <= 1.0


class TestDatasets:
    def test_four_traces_registered(self):
        assert set(SPECS) == set(TRACE_NAMES) == {
            "calgary", "clarknet", "nasa", "rutgers"
        }

    def test_spec_lookup(self):
        assert spec("rutgers").num_files == 38_000
        with pytest.raises(ValueError):
            spec("berkeley")

    def test_rutgers_figure1_anchor(self):
        # Paper: 789 MB file set; 494 MB covers 99% of requests.
        t = load("rutgers")
        assert t.file_set_mb == pytest.approx(789.3, rel=0.01)
        mb99 = bytes_for_request_fraction(t, 0.99)
        assert mb99 == pytest.approx(494.0, rel=0.05)

    def test_scaled_loader(self):
        t = scaled("calgary", 0.01, num_requests=2000)
        assert t.num_requests == 2000
        assert t.num_files == 75
        assert t.mean_file_kb == pytest.approx(19.0, rel=1e-6)

    def test_all_traces_working_sets_exceed_small_memory(self):
        # The premise of the study: working sets larger than one node's
        # memory, so per-node caches alone cannot hold them.
        for name in TRACE_NAMES:
            s = spec(name)
            assert s.file_set_mb > 64  # > paper's mid-range node memory


class TestAnalysis:
    def make(self):
        return Trace(
            spec=TraceSpec("t", 4, 10, 10.0),
            sizes_kb=np.array([100.0, 50.0, 25.0, 1000.0]),
            requests=np.array([0, 0, 0, 0, 1, 1, 1, 2, 2, 3]),
        )

    def test_popularity_cdf(self):
        cum_req, cum_mb = popularity_cdf(self.make())
        assert cum_req[-1] == pytest.approx(1.0)
        assert list(cum_req[:2]) == [pytest.approx(0.4), pytest.approx(0.7)]
        assert cum_mb[-1] == pytest.approx(1175 / 1024)
        # Monotone non-decreasing.
        assert (np.diff(cum_req) >= 0).all() and (np.diff(cum_mb) >= 0).all()

    def test_bytes_for_request_fraction(self):
        t = self.make()
        # 40% of requests -> just file 0 (100 KB).
        assert bytes_for_request_fraction(t, 0.4) == pytest.approx(100 / 1024)
        # 100% needs everything.
        assert bytes_for_request_fraction(t, 1.0) == pytest.approx(1175 / 1024)

    def test_bytes_fraction_invalid(self):
        with pytest.raises(ValueError):
            bytes_for_request_fraction(self.make(), 0.0)

    def test_theoretical_max_hit_rate(self):
        t = self.make()
        # Memory for file 0 only.
        assert theoretical_max_hit_rate(t, 100 / 1024) == pytest.approx(0.4)
        # Memory for files 0+1.
        assert theoretical_max_hit_rate(t, 150 / 1024) == pytest.approx(0.7)
        # No memory -> nothing.
        assert theoretical_max_hit_rate(t, 0.0) == 0.0
        # Unlimited -> everything.
        assert theoretical_max_hit_rate(t, 10.0) == pytest.approx(1.0)

    def test_table2_row_keys(self):
        row = table2_row(self.make())
        assert set(row) == {
            "num_files", "avg_file_kb", "num_requests",
            "avg_request_kb", "file_set_mb",
        }
