"""Tests for the Common Log Format parser."""

import pytest

from repro.traces import parse_clf_line, parse_clf_lines

GOOD = '192.168.0.1 - - [01/Jul/1995:00:00:01 -0400] "GET /history/apollo/ HTTP/1.0" 200 6245'


class TestParseLine:
    def test_good_line(self):
        rec = parse_clf_line(GOOD)
        assert rec is not None
        assert rec.url == "/history/apollo/"
        assert rec.status == 200
        assert rec.size_bytes == 6245

    def test_post_rejected(self):
        line = GOOD.replace("GET", "POST")
        assert parse_clf_line(line) is None

    def test_query_string_stripped(self):
        line = GOOD.replace("/history/apollo/", "/cgi?q=1")
        rec = parse_clf_line(line)
        assert rec.url == "/cgi"

    def test_fragment_stripped(self):
        line = GOOD.replace("/history/apollo/", "/page.html#top")
        assert parse_clf_line(line).url == "/page.html"

    def test_dash_size(self):
        line = GOOD.replace("6245", "-")
        rec = parse_clf_line(line)
        assert rec.size_bytes == 0

    def test_malformed_lines(self):
        assert parse_clf_line("") is None
        assert parse_clf_line("garbage") is None
        assert parse_clf_line('h - - [d] "GET" 200 5') is None  # no URL
        assert parse_clf_line('h - - [d] "" 200 5') is None

    def test_hostnames_with_spaces_rejected_cleanly(self):
        assert parse_clf_line('a b c d e f g') is None


class TestParseLines:
    def make_log(self):
        return [
            'h1 - - [d] "GET /a.html HTTP/1.0" 200 1024',
            'h2 - - [d] "GET /b.gif HTTP/1.0" 200 2048',
            'h3 - - [d] "GET /a.html HTTP/1.0" 304 0',       # revalidation
            'h4 - - [d] "GET /a.html HTTP/1.0" 200 1024',
            'h5 - - [d] "GET /missing HTTP/1.0" 404 300',     # filtered
            'h6 - - [d] "POST /form HTTP/1.0" 200 100',       # filtered
            "malformed line",
        ]

    def test_builds_trace(self):
        t = parse_clf_lines(self.make_log(), name="test")
        assert t.num_files == 2
        assert t.num_requests == 4  # three /a.html (incl. 304) + one /b.gif
        assert t.spec.name == "test"

    def test_sizes_in_kb_max_observed(self):
        lines = [
            'h - - [d] "GET /a HTTP/1.0" 200 512',
            'h - - [d] "GET /a HTTP/1.0" 200 2048',  # larger observation
        ]
        t = parse_clf_lines(lines)
        assert t.sizes_kb[0] == pytest.approx(2.0)

    def test_304_only_files_dropped(self):
        lines = [
            'h - - [d] "GET /a HTTP/1.0" 200 1024',
            'h - - [d] "GET /never200 HTTP/1.0" 304 0',
        ]
        t = parse_clf_lines(lines)
        assert t.num_files == 1
        assert t.num_requests == 1

    def test_empty_log_raises(self):
        with pytest.raises(ValueError):
            parse_clf_lines(["junk", ""])

    def test_all_sizeless_raises(self):
        with pytest.raises(ValueError):
            parse_clf_lines(['h - - [d] "GET /x HTTP/1.0" 304 0'])

    def test_request_stream_order_preserved(self):
        t = parse_clf_lines(self.make_log())
        # /a.html=0, /b.gif=1; order: a, b, a(304), a
        assert list(t.requests) == [0, 1, 0, 0]

    def test_interops_with_analysis(self):
        from repro.traces import table2_row

        row = table2_row(parse_clf_lines(self.make_log()))
        assert row["num_files"] == 2
        assert row["avg_request_kb"] > 0
