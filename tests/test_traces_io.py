"""Tests for trace persistence (save_trace / load_trace)."""

import numpy as np
import pytest

from repro.traces import (
    TraceSpec,
    generate,
    load_trace,
    save_trace,
)


def make_trace():
    return generate(TraceSpec("io-test", 50, 500, 12.0, zipf_theta=1.0,
                              temporal_alpha=0.2, seed=9))


class TestRoundTrip:
    def test_roundtrip_exact(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.requests, trace.requests)
        assert np.array_equal(loaded.sizes_kb, trace.sizes_kb)
        assert loaded.spec == trace.spec

    def test_roundtrip_preserves_aggregates(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.mean_request_kb == trace.mean_request_kb
        assert loaded.file_set_mb == trace.file_set_mb

    def test_loaded_trace_runs_in_experiments(self, tmp_path):
        from repro.experiments import ExperimentConfig, run_experiment

        trace = make_trace()
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        res = run_experiment(
            ExperimentConfig(
                system="cc-kmc", trace=load_trace(path), num_nodes=2,
                mem_mb_per_node=0.25, num_clients=4,
            )
        )
        assert res.throughput_rps > 0

    def test_clf_trace_roundtrip(self, tmp_path):
        from repro.traces import parse_clf_lines

        lines = [
            'h - - [d] "GET /a HTTP/1.0" 200 1024',
            'h - - [d] "GET /b HTTP/1.0" 200 2048',
            'h - - [d] "GET /a HTTP/1.0" 200 1024',
        ]
        trace = parse_clf_lines(lines, name="log")
        path = tmp_path / "log.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.spec.name == "log"
        assert list(loaded.requests) == [0, 1, 0]


class TestErrors:
    def test_not_a_trace_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.arange(3))
        with pytest.raises(ValueError, match="not a saved trace"):
            load_trace(path)

    def test_wrong_version(self, tmp_path):
        import json

        trace = make_trace()
        path = tmp_path / "t.npz"
        meta = json.dumps({"format_version": 99, "spec": {}})
        np.savez(
            path,
            sizes_kb=trace.sizes_kb,
            requests=trace.requests,
            meta=np.frombuffer(meta.encode(), dtype=np.uint8),
        )
        with pytest.raises(ValueError, match="unsupported trace format"):
            load_trace(path)
