"""Tests for the web server layer and the closed-loop measurement driver."""

import numpy as np
import pytest

from repro.cache.block import FileLayout
from repro.cache.directory import HomeMap
from repro.cluster import Cluster
from repro.core import CoopCacheLayer, variant
from repro.params import DEFAULT_PARAMS
from repro.sim import Simulator
from repro.traces import Trace, TraceSpec
from repro.web import ClosedLoopDriver, CoopCacheWebServer


def make_trace(n_files=8, n_requests=200, file_kb=16.0, seed=9):
    rng = np.random.default_rng(seed)
    return Trace(
        spec=TraceSpec("t", n_files, n_requests, file_kb),
        sizes_kb=np.full(n_files, file_kb),
        requests=rng.integers(0, n_files, size=n_requests),
    )


def make_stack(trace, num_nodes=4, capacity_blocks=64, config=None):
    sim = Simulator()
    cluster = Cluster(sim, DEFAULT_PARAMS, num_nodes)
    layout = FileLayout(trace.sizes_kb, DEFAULT_PARAMS)
    homes = HomeMap(layout.num_files, num_nodes)
    layer = CoopCacheLayer(
        cluster, layout, homes, capacity_blocks, config=config or variant("cc-kmc")
    )
    return sim, cluster, CoopCacheWebServer(layer)


class TestCoopCacheWebServer:
    def test_handle_charges_parse_serve_and_nic(self):
        trace = make_trace(n_files=1, n_requests=1)
        sim, cluster, server = make_stack(trace, num_nodes=1)
        node = cluster.nodes[0]
        done = sim.process(server.handle(node, 0))
        sim.run()
        assert done.ok
        # CPU did parse + block ops + serve; NIC pushed the reply.
        assert node.cpu.completed >= 3
        assert node.nic.completed == 1

    def test_reset_stats_clears_hit_counters(self):
        trace = make_trace()
        sim, cluster, server = make_stack(trace)
        done = sim.process(server.handle(cluster.nodes[0], 0))
        sim.run()
        assert server.layer.counters.as_dict()
        server.reset_stats()
        assert server.layer.counters.as_dict() == {}

    def test_hit_rates_passthrough(self):
        trace = make_trace()
        _, _, server = make_stack(trace)
        assert server.hit_rates()["total"] == 0.0


class TestClosedLoopDriver:
    def run_driver(self, trace=None, num_clients=4, warmup_frac=0.25, **kw):
        trace = trace or make_trace()
        sim, cluster, server = make_stack(trace, **kw)
        driver = ClosedLoopDriver(
            sim, cluster, server, trace,
            num_clients=num_clients, warmup_frac=warmup_frac,
        )
        return driver.run(), server, driver

    def test_all_requests_processed(self):
        trace = make_trace(n_requests=100)
        result, _, driver = self.run_driver(trace, warmup_frac=0.0)
        assert result.measured_requests == 100

    def test_warmup_excluded_from_measurement(self):
        trace = make_trace(n_requests=100)
        result, _, _ = self.run_driver(trace, warmup_frac=0.25)
        assert result.measured_requests == 75

    def test_throughput_and_response_positive(self):
        result, _, _ = self.run_driver()
        assert result.throughput_rps > 0
        assert result.mean_response_ms > 0
        assert result.p50_ms <= result.p95_ms <= result.p99_ms

    def test_utilization_keys(self):
        result, _, _ = self.run_driver()
        assert set(result.utilization) == {"cpu", "nic", "bus", "disk"}
        assert all(0.0 <= v <= 1.0 for v in result.utilization.values())
        assert all(
            result.max_utilization[k] >= result.utilization[k] - 1e-9
            for k in result.utilization
        )

    def test_deterministic(self):
        r1, _, _ = self.run_driver()
        r2, _, _ = self.run_driver()
        assert r1.throughput_rps == r2.throughput_rps
        assert r1.mean_response_ms == r2.mean_response_ms

    def test_single_client_serializes_trace(self):
        trace = make_trace(n_requests=30)
        result, server, _ = self.run_driver(trace, num_clients=1,
                                            warmup_frac=0.0)
        assert result.measured_requests == 30
        # One client -> no concurrency -> no coalescing.
        assert server.layer.counters.get("coalesced") == 0

    def test_more_clients_not_slower_wall_clock(self):
        trace = make_trace(n_requests=200)
        r1, _, _ = self.run_driver(trace, num_clients=1, warmup_frac=0.0)
        r8, _, _ = self.run_driver(trace, num_clients=8, warmup_frac=0.0)
        assert r8.throughput_rps >= r1.throughput_rps

    def test_invalid_args(self):
        trace = make_trace()
        sim, cluster, server = make_stack(trace)
        with pytest.raises(ValueError):
            ClosedLoopDriver(sim, cluster, server, trace, num_clients=0)
        with pytest.raises(ValueError):
            ClosedLoopDriver(sim, cluster, server, trace, warmup_frac=1.0)

    def test_client_failure_surfaces(self):
        trace = make_trace()
        sim, cluster, server = make_stack(trace)

        class BrokenService:
            def handle(self, node, file_id):
                raise RuntimeError("service bug")
                yield  # pragma: no cover

            def reset_stats(self):
                pass

        driver = ClosedLoopDriver(sim, cluster, BrokenService(), trace,
                                  num_clients=2)
        with pytest.raises(RuntimeError, match="client process failed"):
            driver.run()

    def test_window_ms_positive(self):
        result, _, _ = self.run_driver()
        assert result.window_ms > 0
